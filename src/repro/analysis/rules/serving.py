"""RL010: the serving tier reads the wall clock only through its clock module.

The serving front-end's replay story (same seed, same trace, same batching
and routing decisions) and its measurement story (latencies a pure function
of dispatcher-stamped instants) both rest on concentrating wall-clock and
entropy access in one designated module: ``repro.serving.recorder``, home
of ``ServingClock`` and ``LatencyRecorder``.  Everywhere else in
``repro.serving`` this rule bans

* sleeping and wall-clock reads: ``time.sleep``, ``time.time`` /
  ``time_ns`` / ``localtime`` / ``gmtime`` / ``ctime``, ``datetime.now`` /
  ``utcnow`` / ``today`` -- pacing goes through the injected
  ``ServingClock`` (``sleep`` / ``sleep_until``), timestamps through
  ``clock.now()``;
* unseeded entropy: the module-level ``random.*`` functions and unseeded
  ``random.Random()`` / ``random.SystemRandom()`` /
  ``numpy.random.default_rng()`` constructors -- the traffic generator
  draws everything from one seeded ``random.Random(config.seed)``.

``time.perf_counter`` (and the other monotonic duration clocks) stays
legal everywhere, exactly as under RL004: a duration can only end up in a
utilisation report, never in a scheduling decision or a digest.  The
designated clock modules are configurable via ``[tool.reprolint.rl010]
clock_modules = [...]``.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.rules.determinism import _GLOBAL_RANDOM, _SEEDABLE, _WALL_CLOCK
from repro.analysis.source import ModuleInfo, call_args

__all__ = ["ServingWallClockRule"]

#: Wall-clock access banned in the serving tier outside the clock modules:
#: RL004's reads plus ``time.sleep`` (pacing must go through ServingClock,
#: which is injectable and flushes in slices).
_SERVING_WALL_CLOCK = _WALL_CLOCK | frozenset({"time.sleep"})


class ServingWallClockRule(Rule):
    rule_id = "RL010"
    name = "serving-clock"
    summary = (
        "serving modules sleep/read time only via ServingClock and draw "
        "randomness only from seeded generators"
    )
    scopes = ("repro.serving",)
    option_names = ("scopes", "clock_modules")

    def __init__(self) -> None:
        #: Modules allowed to touch the wall clock directly: the designated
        #: clock/recorder implementation itself.
        self.clock_modules: Tuple[str, ...] = ("repro.serving.recorder",)

    def check(self, info: ModuleInfo) -> List[Finding]:
        if info.module in self.clock_modules:
            return []
        findings: List[Finding] = []
        for node in info.nodes(ast.Call):
            resolved = info.resolve(node.func)
            if resolved is None:
                continue
            positional, keywords = call_args(node)
            if resolved in _SEEDABLE and not positional and not keywords:
                findings.append(
                    self.finding(
                        info,
                        node,
                        f"unseeded {resolved}() in the serving tier; the "
                        "traffic/runtime layers must draw from one seeded "
                        "generator so traces replay bit-identically",
                    )
                )
        for node in info.nodes(ast.Attribute, ast.Name):
            if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Load):
                continue
            resolved = info.resolve(node)
            if resolved is None:
                continue
            if resolved in _SERVING_WALL_CLOCK:
                findings.append(
                    self.finding(
                        info,
                        node,
                        f"{resolved} outside the designated clock module "
                        f"({', '.join(self.clock_modules)}); go through the "
                        "injected ServingClock (now/sleep/sleep_until) so "
                        "pacing and timestamps stay swappable and testable",
                    )
                )
            elif resolved in _GLOBAL_RANDOM:
                findings.append(
                    self.finding(
                        info,
                        node,
                        f"{resolved} uses the global unseeded RNG in the "
                        "serving tier; same-seed load replays would diverge",
                    )
                )
        return findings
