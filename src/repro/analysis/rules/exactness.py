"""RL005: geometry replay predicates compare exactly.

The incremental-update path replays the order-dependent tolerance
resolution with *exactly* the float comparisons the fresh build performs
-- bit-identity depends on it (see ``repro/ifmh/updates.py`` and the
differential property harness).  Approximate predicates
(``math.isclose``, ``numpy.isclose``/``allclose``) and value-rewriting
rounding (``round``, ``numpy.round``) inside the geometry layer would make
"equal" depend on call-site configuration instead of IEEE-754 semantics,
so they are banned there.  Tolerances are legal -- but only as explicit,
ordered comparisons against an engine tolerance (``a + tol < b``), never
as a symmetric closeness helper.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import ModuleInfo

__all__ = ["ExactPredicateRule"]

_BANNED = frozenset(
    {
        "math.isclose",
        "numpy.isclose",
        "numpy.allclose",
        "numpy.round",
        "numpy.around",
        "numpy.round_",
    }
)


class ExactPredicateRule(Rule):
    rule_id = "RL005"
    name = "exact-predicates"
    summary = "geometry replay predicates must use exact comparisons, not isclose/round"
    scopes = ("repro.geometry",)
    option_names = ("scopes",)

    def check(self, info: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in info.nodes(ast.Attribute, ast.Name):
            if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Load):
                continue
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Attribute):
                continue
            resolved = info.resolve(node)
            if resolved in _BANNED:
                findings.append(
                    self.finding(
                        info,
                        node,
                        f"{resolved} is an approximate predicate; geometry "
                        "replays must use the exact ordered comparisons the "
                        "fresh build performs",
                    )
                )
        for node in info.nodes(ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id == "round"
                and info.resolve(func) == "round"
            ):
                findings.append(
                    self.finding(
                        info,
                        node,
                        "round() rewrites float values; geometry paths must "
                        "keep IEEE-754 results bit-exact",
                    )
                )
        return findings
