"""RL002: signed messages are epoch-bound.

From epoch 1 on, every message a :class:`repro.crypto.signer.Signer` signs
(and a verifier checks) must carry the epoch token, or a server serving a
stale pre-update ADS presents signatures that still verify -- a freshness
hole.  The single place encoding the "epoch 0 keeps the legacy message"
rule is :func:`repro.crypto.hashing.epoch_bound_combine`; this rule checks
that every ``.sign(message)`` / ``.verify(message, signature)`` call in the
signing layers builds its message through it (directly, via an allowlisted
message-builder helper, or via a local variable assigned from one).

Only calls with the signer/verifier arity are considered (``sign`` with one
argument, ``verify`` with two), so unrelated methods that share the names
-- ``Client.verify(query, result, vo)``, ``np.sign(x)`` -- are ignored.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import ModuleInfo, call_args

__all__ = ["EpochBindingRule"]


class EpochBindingRule(Rule):
    rule_id = "RL002"
    name = "epoch-binding"
    summary = (
        "Signer.sign / Verifier.verify messages must be built via "
        "epoch_bound_combine or an allowlisted message builder"
    )
    scopes = ("repro.mesh", "repro.core", "repro.ifmh")
    option_names = ("scopes", "message_builders")

    def __init__(self) -> None:
        #: Call names (last dotted segment) trusted to produce epoch-bound
        #: messages.  The helpers themselves call ``epoch_bound_combine``;
        #: the linter's own fixture tests pin that they stay allowlisted.
        self.message_builders: Tuple[str, ...] = (
            "epoch_bound_combine",
            "signed_root_message",
            "subdomain_digest",
            "_pair_digest",
        )

    # ------------------------------------------------------------ helpers
    def _is_builder_call(self, node: ast.AST) -> bool:
        # A conditional between the genesis message and a bound one
        # (``root if epoch == 0 else epoch_bound_combine(...)``) counts as
        # bound: epoch 0 is the one sanctioned unbound epoch.
        if isinstance(node, ast.IfExp):
            return self._is_builder_call(node.body) or self._is_builder_call(node.orelse)
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in self.message_builders
        if isinstance(func, ast.Attribute):
            return func.attr in self.message_builders
        return False

    def _bound_names(self, function: Optional[ast.AST]) -> Set[str]:
        """Local names assigned from a builder call in the enclosing scope."""
        names: Set[str] = set()
        if function is None:
            return names
        for statement in ast.walk(function):
            if isinstance(statement, ast.Assign) and self._is_builder_call(
                statement.value
            ):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif (
                isinstance(statement, ast.AnnAssign)
                and self._is_builder_call(statement.value)
                and isinstance(statement.target, ast.Name)
            ):
                names.add(statement.target.id)
        return names

    # -------------------------------------------------------------- check
    def check(self, info: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in info.nodes(ast.Call):
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in ("sign", "verify"):
                continue
            # Module-level functions named sign/verify (np.sign, ...) are
            # not Signer/Verifier methods.
            if info.is_module_receiver(func.value):
                continue
            positional, keywords = call_args(node)
            expected = 1 if func.attr == "sign" else 2
            if len(positional) != expected or keywords:
                continue  # different API surface (e.g. Client.verify)
            message = positional[0]
            if self._is_builder_call(message):
                continue
            if isinstance(message, ast.Name):
                enclosing = info.enclosing_function(node)
                if message.id in self._bound_names(enclosing):
                    continue
            builders = ", ".join(self.message_builders)
            findings.append(
                self.finding(
                    info,
                    node,
                    f"message passed to .{func.attr}() is not built via an "
                    f"epoch-binding helper ({builders}); signatures that skip "
                    "epoch_bound_combine stay valid on stale epochs",
                )
            )
        return findings
