"""RL011: scaling decisions read CPU affinity, not the host core count.

``os.cpu_count()`` (and ``multiprocessing.cpu_count()``, its alias)
reports the cores the *host machine* has.  Under a CPU affinity mask or a
container cpuset -- every CI runner, most production deployments -- the
current process may be allowed far fewer, so a worker count, throughput
floor or speedup gate derived from the host count is physically
unreachable and fails for hardware reasons the code could have known
about.  The serving-throughput gate did exactly this before it switched
to affinity-derived cores.

:mod:`repro.core.parallel` is the single sanctioned caller: its
``available_cores()`` prefers ``len(os.sched_getaffinity(0))`` and falls
back to ``os.cpu_count()`` only on platforms without affinity support.
Everywhere else, reading the host core count for a scaling decision is a
latent affinity bug and this rule flags it.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import ModuleInfo

__all__ = ["CpuCountRule"]

#: Host-core-count reads that ignore the process's CPU affinity mask.
_HOST_CORE_COUNT = frozenset({"os.cpu_count", "multiprocessing.cpu_count"})

#: The one module allowed to consult ``os.cpu_count`` (as the no-affinity
#: platform fallback inside ``available_cores``).
_SANCTIONED_MODULE = "repro.core.parallel"


class CpuCountRule(Rule):
    rule_id = "RL011"
    name = "affinity-scaling"
    summary = (
        "scaling decisions use repro.core.parallel.available_cores, "
        "never os.cpu_count"
    )
    scopes = ("repro",)
    option_names = ("scopes",)

    def check(self, info: ModuleInfo) -> List[Finding]:
        if info.module == _SANCTIONED_MODULE:
            return []
        findings: List[Finding] = []
        for node in info.nodes(ast.Attribute, ast.Name):
            if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Load):
                continue
            resolved = info.resolve(node)
            if resolved in _HOST_CORE_COUNT:
                findings.append(
                    self.finding(
                        info,
                        node,
                        f"{resolved} reports the host's cores, not the cores "
                        "this process may use under an affinity mask or "
                        "container cpuset; call "
                        "repro.core.parallel.available_cores() instead",
                    )
                )
        return findings
