"""RL003: frozen config/package dataclasses are never mutated.

:class:`~repro.core.config.SystemConfig`,
:class:`~repro.core.owner.ServerPackage` and
:class:`~repro.core.owner.PublicParameters` are frozen by design: a server
package or build config that mutates after construction invalidates the
artifact checksums and the bit-identity guarantees built on them.  The
dataclass machinery already rejects plain attribute assignment at runtime
-- but only when the code path runs, and ``object.__setattr__`` bypasses
it entirely.  This rule makes the discipline static:

* ``instance.attr = value`` (or ``+=``) where ``instance`` is inferred to
  be one of the frozen classes is a finding;
* ``setattr(instance, ...)`` / ``object.__setattr__(instance, ...)`` on
  such an instance is a finding;
* ``object.__setattr__(self, ...)`` *inside* a frozen class is allowed
  only in ``__post_init__`` / ``__init__`` / ``__new__`` (the standard
  frozen-dataclass construction idiom) -- anywhere else it is a finding.

Instance inference is deliberately simple and local: parameter
annotations, ``x: Cls`` annotations and ``x = Cls(...)`` /
``x = Cls.from_*(...)`` assignments within the enclosing function.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import ModuleInfo, call_args

__all__ = ["FrozenMutationRule"]

_CONSTRUCTION_METHODS = frozenset({"__post_init__", "__init__", "__new__"})


class FrozenMutationRule(Rule):
    rule_id = "RL003"
    name = "frozen-mutation"
    summary = "frozen config/package dataclasses must never be written after construction"
    scopes = ("repro",)
    option_names = ("scopes", "frozen_classes")

    def __init__(self) -> None:
        self.frozen_classes: Tuple[str, ...] = (
            "SystemConfig",
            "ServerPackage",
            "PublicParameters",
        )

    # ---------------------------------------------------------- inference
    def _annotation_class(self, annotation: Optional[ast.AST]) -> Optional[str]:
        """Frozen class named anywhere in an annotation (Optional[...] etc.)."""
        if annotation is None:
            return None
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name) and node.id in self.frozen_classes:
                return node.id
            if isinstance(node, ast.Attribute) and node.attr in self.frozen_classes:
                return node.attr
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in self.frozen_classes
            ):
                return node.value
        return None

    def _value_class(self, value: Optional[ast.AST]) -> Optional[str]:
        """Frozen class constructed by ``Cls(...)`` or ``Cls.method(...)``."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if isinstance(func, ast.Name) and func.id in self.frozen_classes:
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.frozen_classes
        ):
            return func.value.id
        return None

    def _inferred(self, function: Optional[ast.AST]) -> Dict[str, str]:
        """Local name -> frozen class, inferred within one function."""
        inferred: Dict[str, str] = {}
        if function is None or not isinstance(
            function, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return inferred
        arguments = function.args
        for arg in (
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ):
            cls = self._annotation_class(arg.annotation)
            if cls is not None:
                inferred[arg.arg] = cls
        for statement in ast.walk(function):
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                cls = self._annotation_class(statement.annotation) or self._value_class(
                    statement.value
                )
                if cls is not None:
                    inferred[statement.target.id] = cls
            elif isinstance(statement, ast.Assign):
                cls = self._value_class(statement.value)
                if cls is not None:
                    for target in statement.targets:
                        if isinstance(target, ast.Name):
                            inferred[target.id] = cls
        return inferred

    def _target_class(self, info: ModuleInfo, node: ast.AST) -> Optional[str]:
        if not isinstance(node, ast.Name):
            return None
        return self._inferred(info.enclosing_function(node)).get(node.id)

    # -------------------------------------------------------------- check
    def check(self, info: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        # Plain attribute writes: x.attr = ... / x.attr += ...
        for node in info.nodes(ast.Assign, ast.AugAssign):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                cls = self._target_class(info, target.value)
                if cls is not None:
                    findings.append(
                        self.finding(
                            info,
                            node,
                            f"attribute write to frozen dataclass {cls}; "
                            "construct a new instance (dataclasses.replace) "
                            "instead of mutating",
                        )
                    )
        # setattr escapes.
        for node in info.nodes(ast.Call):
            func = node.func
            resolved = info.resolve(func)
            if resolved not in ("setattr", "object.__setattr__"):
                continue
            positional, _ = call_args(node)
            if not positional:
                continue
            target = positional[0]
            cls = self._target_class(info, target)
            if cls is not None:
                findings.append(
                    self.finding(
                        info,
                        node,
                        f"{resolved} on frozen dataclass {cls} bypasses its "
                        "immutability; frozen instances must never be written",
                    )
                )
                continue
            if (
                resolved == "object.__setattr__"
                and isinstance(target, ast.Name)
                and target.id == "self"
            ):
                enclosing_class = info.enclosing_class(node)
                function = info.enclosing_function(node)
                if (
                    enclosing_class is not None
                    and enclosing_class.name in self.frozen_classes
                    and (
                        function is None
                        or function.name not in _CONSTRUCTION_METHODS
                    )
                ):
                    findings.append(
                        self.finding(
                            info,
                            node,
                            f"object.__setattr__(self, ...) in frozen dataclass "
                            f"{enclosing_class.name} outside "
                            "__post_init__/__init__/__new__ mutates a frozen "
                            "instance after construction",
                        )
                    )
        return findings
