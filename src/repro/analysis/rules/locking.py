"""RL006: shared mutable state in concurrent classes stays lock-guarded.

``Server.execute`` / ``Server.execute_batch`` (and ``Client.verify``) are
documented thread-safe: cumulative counters and the score cache are only
ever mutated under an internal lock.  The ROADMAP's multi-worker serving
tier builds directly on that discipline, so this rule pins it statically.

The check is deliberately conservative and self-calibrating: in any class
that creates a ``threading.Lock``/``RLock``/``Condition`` in ``__init__``
(entering a ``Condition`` acquires its underlying lock, so a ``with
self.<condition>:`` block is a lock guard too), every ``self.<attr>`` the
class ever writes *inside* a ``with self.<lock>:`` block is considered
lock-guarded shared state.  Any other write to the
same attribute (assignment, augmented assignment, ``self.attr[k] = v``, or
a mutating method call such as ``.merge(...)``/``.pop(...)``) outside a
lock block -- anywhere but ``__init__`` or a ``*_locked`` helper (the
naming convention for "caller already holds the lock") -- is a finding.  Attributes never
written under a lock are untracked: the rule never guesses which state is
shared, it only enforces consistency with what the class itself declared
by locking once.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import ModuleInfo

__all__ = ["LockGuardRule"]

#: Method names treated as in-place mutation of the receiver.
_MUTATORS = frozenset(
    {
        "merge",
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "setdefault",
        "move_to_end",
    }
)

_LOCK_TYPES = frozenset({"threading.Lock", "threading.RLock", "threading.Condition"})


class LockGuardRule(Rule):
    rule_id = "RL006"
    name = "lock-guard"
    summary = (
        "attributes a class mutates under its lock must never be mutated "
        "outside it"
    )
    scopes = ("repro",)
    option_names = ("scopes",)

    # ------------------------------------------------------------ helpers
    @staticmethod
    def _self_attr(node: ast.AST) -> "str | None":
        """``X`` when ``node`` is exactly ``self.X``."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _lock_attrs(self, info: ModuleInfo, cls: ast.ClassDef) -> Set[str]:
        locks: Set[str] = set()
        for statement in ast.walk(cls):
            if not isinstance(statement, ast.Assign):
                continue
            if not isinstance(statement.value, ast.Call):
                continue
            if info.resolve(statement.value.func) not in _LOCK_TYPES:
                continue
            for target in statement.targets:
                attr = self._self_attr(target)
                if attr is not None:
                    locks.add(attr)
        return locks

    def _under_lock(self, info: ModuleInfo, node: ast.AST, locks: Set[str]) -> bool:
        for ancestor in info.ancestors(node):
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    attr = self._self_attr(item.context_expr)
                    if attr is not None and attr in locks:
                        return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # The ``_locked`` suffix is the project's caller-holds-the-lock
                # contract: such helpers are only ever invoked from within a
                # ``with self.<lock>:`` block, so their writes are guarded.
                return ancestor.name.endswith("_locked")
        return False

    def _write_events(
        self, info: ModuleInfo, cls: ast.ClassDef, locks: Set[str]
    ) -> List[Tuple[str, ast.AST, bool]]:
        """(attr, node, under_lock) for every ``self.<attr>`` mutation."""
        events: List[Tuple[str, ast.AST, bool]] = []

        def add(attr: "str | None", node: ast.AST) -> None:
            if attr is None or attr in locks:
                return
            function = info.enclosing_function(node)
            if function is None or function.name == "__init__":
                return
            if info.enclosing_class(node) is not cls:
                return
            events.append((attr, node, self._under_lock(info, node, locks)))

        for statement in ast.walk(cls):
            if isinstance(statement, (ast.Assign, ast.AugAssign)):
                targets = (
                    statement.targets
                    if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
                for target in targets:
                    add(self._self_attr(target), statement)
                    if isinstance(target, ast.Subscript):
                        add(self._self_attr(target.value), statement)
            elif isinstance(statement, ast.Call):
                func = statement.func
                if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                    add(self._self_attr(func.value), statement)
            elif isinstance(statement, ast.Delete):
                for target in statement.targets:
                    add(self._self_attr(target), statement)
                    if isinstance(target, ast.Subscript):
                        add(self._self_attr(target.value), statement)
        return events

    # -------------------------------------------------------------- check
    def check(self, info: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for cls in info.nodes(ast.ClassDef):
            locks = self._lock_attrs(info, cls)
            if not locks:
                continue
            events = self._write_events(info, cls, locks)
            guarded = {attr for attr, _node, under in events if under}
            reported: Dict[Tuple[str, int], bool] = {}
            for attr, node, under in events:
                if under or attr not in guarded:
                    continue
                key = (attr, getattr(node, "lineno", 0))
                if reported.get(key):
                    continue
                reported[key] = True
                findings.append(
                    self.finding(
                        info,
                        node,
                        f"self.{attr} is lock-guarded elsewhere in "
                        f"{cls.name} but mutated here outside a 'with "
                        "self.<lock>:' block; concurrent callers can race",
                    )
                )
        return findings
