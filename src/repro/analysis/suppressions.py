"""Suppression comments: ``# reprolint: disable=RL001 -- reason``.

Policy
------
* A suppression silences findings of the named rule(s) **on its own
  physical line** (the line the flagged AST node starts on).
* The ``-- reason`` rationale is mandatory.  A disable comment without one
  does not suppress anything and is itself reported (as
  :data:`~repro.analysis.findings.SUPPRESSION_RULE`), so an invariant can
  never be waved away silently.
* Under ``--strict``, a suppression that matched no finding is *stale* and
  reported too -- fixed code must shed its annotations.
* :data:`~repro.analysis.findings.SUPPRESSION_RULE` and
  :data:`~repro.analysis.findings.PARSE_RULE` findings cannot be
  suppressed.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import PARSE_RULE, SUPPRESSION_RULE, Finding

__all__ = ["Suppression", "collect_suppressions", "apply_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)

#: A comment is treated as a reprolint directive (and audited as such) only
#: when it starts with ``# reprolint:`` -- prose that merely mentions the
#: tool is left alone.
_TRIGGER = re.compile(r"#\s*reprolint\s*:")

#: Findings that the suppression machinery itself emits are exempt from
#: suppression -- the escape hatch must not be able to silence its own audit.
_UNSUPPRESSIBLE = frozenset({SUPPRESSION_RULE, PARSE_RULE})


@dataclass(frozen=True)
class Suppression:
    """One parsed ``disable`` directive."""

    line: int
    column: int
    rules: Tuple[str, ...]
    reason: str


def collect_suppressions(
    relpath: str, source: str
) -> Tuple[List[Suppression], List[Finding]]:
    """Parse every reprolint directive in ``source``.

    Returns the usable (reasoned) suppressions plus immediate findings for
    malformed ones: a directive without a rationale is a finding, not a
    suppression.
    """
    suppressions: List[Suppression] = []
    findings: List[Finding] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            token for token in tokens if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The engine reports unparsable files separately; nothing to do here.
        return [], []
    for token in comments:
        if _TRIGGER.match(token.string.strip()) is None:
            continue
        match = _DIRECTIVE.match(token.string.strip())
        line, column = token.start
        if match is None:
            findings.append(
                Finding(
                    path=relpath,
                    line=line,
                    column=column,
                    rule=SUPPRESSION_RULE,
                    message=(
                        "malformed reprolint directive; expected "
                        "'# reprolint: disable=RULE[,RULE...] -- reason'"
                    ),
                )
            )
            continue
        rules = tuple(
            rule.strip().upper() for rule in match.group("rules").split(",") if rule.strip()
        )
        reason = match.group("reason")
        if not rules:
            findings.append(
                Finding(
                    path=relpath,
                    line=line,
                    column=column,
                    rule=SUPPRESSION_RULE,
                    message="reprolint directive names no rules",
                )
            )
            continue
        if not reason:
            findings.append(
                Finding(
                    path=relpath,
                    line=line,
                    column=column,
                    rule=SUPPRESSION_RULE,
                    message=(
                        f"suppression of {', '.join(rules)} carries no rationale; "
                        "write '-- <why this violation is intentional>' "
                        "(a reasonless disable suppresses nothing)"
                    ),
                )
            )
            continue
        if any(rule in _UNSUPPRESSIBLE for rule in rules):
            findings.append(
                Finding(
                    path=relpath,
                    line=line,
                    column=column,
                    rule=SUPPRESSION_RULE,
                    message=(
                        f"rules {sorted(_UNSUPPRESSIBLE)} cannot be suppressed"
                    ),
                )
            )
            continue
        suppressions.append(
            Suppression(line=line, column=column, rules=rules, reason=reason)
        )
    return suppressions, findings


def apply_suppressions(
    relpath: str,
    findings: List[Finding],
    suppressions: List[Suppression],
    *,
    strict: bool,
) -> Tuple[List[Finding], int]:
    """Drop suppressed findings; under ``strict``, report stale directives.

    Returns the surviving findings and the number suppressed.
    """
    by_key: Dict[Tuple[int, str], List[Suppression]] = {}
    for suppression in suppressions:
        for rule in suppression.rules:
            by_key.setdefault((suppression.line, rule), []).append(suppression)

    used: Set[Tuple[int, Tuple[str, ...], str]] = set()
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        if finding.rule in _UNSUPPRESSIBLE:
            kept.append(finding)
            continue
        matches = by_key.get((finding.line, finding.rule))
        if matches:
            suppressed += 1
            for suppression in matches:
                used.add((suppression.line, (finding.rule,), suppression.reason))
        else:
            kept.append(finding)

    if strict:
        for suppression in suppressions:
            for rule in suppression.rules:
                if (suppression.line, (rule,), suppression.reason) not in used:
                    kept.append(
                        Finding(
                            path=relpath,
                            line=suppression.line,
                            column=suppression.column,
                            rule=SUPPRESSION_RULE,
                            message=(
                                f"stale suppression: no {rule} finding on this "
                                "line; remove the directive"
                            ),
                        )
                    )
    return kept, suppressed
