"""Parsed-module model shared by every reprolint rule.

The engine parses each file exactly once and walks the AST exactly once,
building the indexes rules need: nodes grouped by type, a child-to-parent
map, and the import-alias table that lets a rule resolve ``sha(...)`` back
to ``hashlib.sha256`` when the module did ``from hashlib import sha256 as
sha``.  Rules then *consume* these indexes instead of re-walking the tree,
which keeps the whole run a single pass per file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

__all__ = ["ModuleInfo", "module_name_for", "parse_module"]


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/ifmh/updates.py`` maps to ``repro.ifmh.updates`` (anything
    up to and including a ``src`` component is the import root);
    ``tests/core/test_config.py`` maps to ``tests.core.test_config``.
    """
    parts = list(relpath.replace("\\", "/").split("/"))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


@dataclass
class ModuleInfo:
    """One parsed source file plus the single-pass indexes rules share."""

    relpath: str
    module: str
    source: str
    tree: ast.Module
    #: Nodes grouped by AST class, in source (walk) order.
    nodes_by_type: Dict[Type[ast.AST], List[ast.AST]] = field(default_factory=dict)
    #: Child node -> parent node (keyed by identity).
    parent_of: Dict[int, ast.AST] = field(default_factory=dict)
    #: Local name -> fully dotted origin, from import statements:
    #: ``import numpy as np`` yields ``np -> numpy``; ``from hashlib import
    #: sha256 as sha`` yields ``sha -> hashlib.sha256``.
    import_aliases: Dict[str, str] = field(default_factory=dict)
    #: Local names bound by plain ``import x`` / ``import x as y`` -- i.e.
    #: names that are module objects, not functions or classes.
    module_aliases: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------- indexes
    def nodes(self, *types: Type[ast.AST]) -> Iterator[ast.AST]:
        for node_type in types:
            yield from self.nodes_by_type.get(node_type, ())

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parent_of.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional["ast.FunctionDef | ast.AsyncFunctionDef"]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    # ---------------------------------------------------------- resolution
    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """The literal dotted path of a Name/Attribute chain, unresolved."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        return ".".join(reversed(parts))

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully qualified origin of a Name/Attribute chain, through imports.

        ``np.random.rand`` resolves to ``numpy.random.rand``; a bare
        ``sha256`` imported from :mod:`hashlib` resolves to
        ``hashlib.sha256``.  Names with no import origin resolve to their
        literal dotted path (so locally defined helpers keep their name).
        """
        dotted = self.dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        origin = self.import_aliases.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin

    def is_module_receiver(self, node: ast.AST) -> bool:
        """True when ``node`` is a bare name bound by a plain module import.

        Used to tell ``np.sign(x)`` (a module-level function) apart from
        ``signer.sign(message)`` (a method on an object).
        """
        return isinstance(node, ast.Name) and node.id in self.module_aliases


def _index(info: ModuleInfo) -> None:
    stack: List[ast.AST] = [info.tree]
    nodes_by_type = info.nodes_by_type
    parent_of = info.parent_of
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            parent_of[id(child)] = node
            nodes_by_type.setdefault(type(child), []).append(child)
            stack.append(child)
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else alias.name.partition(".")[0]
                info.import_aliases[local] = target
                info.module_aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.import_aliases[local] = f"{node.module}.{alias.name}"
    # Walk order above is DFS-with-a-stack (reversed within levels); rules
    # that care about source order sort by position.
    for nodes in nodes_by_type.values():
        nodes.sort(key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)))


def parse_module(relpath: str, source: str) -> ModuleInfo:
    """Parse ``source`` and build the shared single-pass indexes."""
    tree = ast.parse(source, filename=relpath)
    info = ModuleInfo(
        relpath=relpath,
        module=module_name_for(relpath),
        source=source,
        tree=tree,
    )
    _index(info)
    return info


def call_args(node: ast.Call) -> Tuple[Sequence[ast.expr], Sequence[ast.keyword]]:
    """Positional and keyword arguments of a call (starred args excluded)."""
    positional = [arg for arg in node.args if not isinstance(arg, ast.Starred)]
    return positional, node.keywords
