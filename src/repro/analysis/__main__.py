"""CLI entry point: ``python -m repro.analysis [options] [paths...]``.

Exit-code contract (stable; CI depends on it):

* ``0`` -- every linted file is clean (all findings suppressed with a
  rationale, or none at all);
* ``1`` -- at least one unsuppressed finding;
* ``2`` -- usage or configuration error (bad flag, malformed
  ``[tool.reprolint]`` table).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.config import LintConfig, LintConfigError, load_config
from repro.analysis.engine import lint_paths
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import all_rules

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: AST-based project-invariant checks",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the report to FILE (always written, even on findings)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="additionally report stale suppressions (directives matching no finding)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="pyproject.toml to read [tool.reprolint] from (default: ./pyproject.toml)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml and run with built-in defaults",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = _build_parser().parse_args(argv)

    if arguments.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scopes) if rule.scopes else "all modules"
            print(f"{rule.rule_id}  {rule.name}: {rule.summary}  [scope: {scope}]")
        print(
            "RL000  suppression-hygiene: disable comments need a '-- reason'; "
            "stale ones are reported under --strict  [scope: all modules]"
        )
        return 0

    try:
        known = [rule.rule_id for rule in all_rules()]
        config = (
            LintConfig() if arguments.no_config else load_config(arguments.config, known)
        )
        config = config.with_strict(arguments.strict)
        result = lint_paths(arguments.paths, config)
    except LintConfigError as error:
        print(f"reprolint: configuration error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"reprolint: {error}", file=sys.stderr)
        return 2

    report = render_json(result) if arguments.format == "json" else render_text(result)
    print(report)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as stream:
            stream.write(report)
            stream.write("\n")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
