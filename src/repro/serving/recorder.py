"""The serving tier's designated wall-clock and measurement module.

Everything in ``repro.serving`` that needs real time -- pacing open-loop
arrivals, stamping enqueue/dispatch/completion instants, sleeping at all --
goes through this module.  reprolint rule **RL010** enforces that split
statically: outside this module the serving tier may not call ``time.time``
/ ``time.sleep`` / the global ``random`` functions / unseeded RNG
constructors, so the dispatcher, worker and traffic layers stay replayable
(their *decisions* are pure functions of the seeded trace; only the
*measurements* ever consult the clock, and a measurement can only end up in
a report, never in a digest or a routing decision).

:class:`ServingClock` is a monotonic wall clock (``time.perf_counter``)
with a polling ``sleep_until``; :class:`LatencyRecorder` folds completed
tickets into the latency/throughput/utilisation summary the ``--serve``
bench gate and ``BENCH_serve.json`` report.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional

from repro.metrics.timing import LatencySummary

__all__ = ["ServingClock", "LatencyRecorder"]

#: Longest single sleep slice of :meth:`ServingClock.sleep_until`; short
#: slices keep pacing responsive to the frontend being stopped mid-trace.
_SLEEP_SLICE = 0.002


class ServingClock:
    """Monotonic wall clock shared by the front-end and the load harness.

    One clock instance is threaded through the dispatcher and the traffic
    driver so every timestamp of one run lives on the same time base;
    ``perf_counter`` makes the base monotonic (latencies can never come out
    negative because NTP stepped the clock mid-run).
    """

    def now(self) -> float:
        """Seconds on the monotonic time base (only differences mean anything)."""
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (no-op for zero or negative durations)."""
        if seconds > 0:
            time.sleep(seconds)

    def sleep_until(self, deadline: float) -> None:
        """Block until :meth:`now` reaches ``deadline``.

        Sleeps in short slices rather than one long call so an open-loop
        driver waiting for a far-future arrival stays responsive; returns
        immediately when the deadline already passed (an open-loop harness
        that falls behind must *not* stretch the schedule -- lateness shows
        up as queueing delay in the recorded latencies, exactly as offered
        load beyond capacity should).
        """
        while True:
            remaining = deadline - self.now()
            if remaining <= 0:
                return
            time.sleep(min(remaining, _SLEEP_SLICE))


class LatencyRecorder:
    """Aggregates completed serving tickets into one measurement summary.

    ``observe`` is called once per finished ticket (order irrelevant);
    ``summary`` computes enqueue-to-verified-reply percentiles, achieved
    versus offered throughput and per-worker utilisation.  The recorder
    never consults the clock itself -- it only arranges timestamps the
    dispatcher already stamped -- so summaries are a pure function of the
    observed tickets.
    """

    def __init__(self) -> None:
        self._latencies: List[float] = []
        self._queue_delays: List[float] = []
        self._first_enqueue: Optional[float] = None
        self._last_completion: Optional[float] = None
        self._observed = 0
        self._completed = 0
        self._errored = 0
        self._per_worker_served: Dict[int, int] = {}

    # ------------------------------------------------------------ recording
    def observe(self, ticket) -> None:
        """Fold one ticket (see ``repro.serving.dispatcher.ServingTicket``) in."""
        self._observed += 1
        if self._first_enqueue is None or ticket.enqueued_at < self._first_enqueue:
            self._first_enqueue = ticket.enqueued_at
        if ticket.error is not None or ticket.completed_at is None:
            self._errored += 1
            return
        self._completed += 1
        if self._last_completion is None or ticket.completed_at > self._last_completion:
            self._last_completion = ticket.completed_at
        self._latencies.append(ticket.completed_at - ticket.enqueued_at)
        if ticket.dispatched_at is not None:
            self._queue_delays.append(ticket.dispatched_at - ticket.enqueued_at)
        if ticket.worker_id is not None:
            self._per_worker_served[ticket.worker_id] = (
                self._per_worker_served.get(ticket.worker_id, 0) + 1
            )

    def observe_all(self, tickets) -> None:
        for ticket in tickets:
            self.observe(ticket)

    # ------------------------------------------------------------- summary
    @property
    def wall_seconds(self) -> float:
        """First enqueue to last completion (0.0 before any completion)."""
        if self._first_enqueue is None or self._last_completion is None:
            return 0.0
        return self._last_completion - self._first_enqueue

    def summary(
        self,
        *,
        offered_rate: Optional[float] = None,
        worker_stats: Optional[Mapping[int, Mapping[str, object]]] = None,
    ) -> Dict[str, object]:
        """The measurement dict the bench gate and reports consume.

        ``offered_rate`` is the open-loop trace's arrival rate (achieved
        versus offered is only meaningful for paced runs); ``worker_stats``
        is :meth:`repro.serving.dispatcher.ServingFrontEnd.worker_stats`,
        used for per-worker busy-time utilisation.
        """
        wall = self.wall_seconds
        achieved = self._completed / wall if wall > 0 else 0.0
        payload: Dict[str, object] = {
            "observed": self._observed,
            "completed": self._completed,
            "errored": self._errored,
            "dropped": self._observed - self._completed - self._errored,
            "wall_seconds": wall,
            "achieved_rate": achieved,
            "offered_rate": offered_rate,
            "achieved_over_offered": (
                achieved / offered_rate if offered_rate else None
            ),
            "latency": (
                LatencySummary.from_samples(self._latencies).as_dict()
                if self._latencies
                else None
            ),
            "queue_delay": (
                LatencySummary.from_samples(self._queue_delays).as_dict()
                if self._queue_delays
                else None
            ),
        }
        if worker_stats is not None:
            per_worker: Dict[str, Dict[str, object]] = {}
            for worker_id, stats in sorted(worker_stats.items()):
                busy = float(stats.get("busy_seconds", 0.0))
                per_worker[str(worker_id)] = {
                    "served": self._per_worker_served.get(worker_id, 0),
                    "busy_seconds": busy,
                    "utilisation": busy / wall if wall > 0 else 0.0,
                    "batches": stats.get("batches", 0),
                    "respawns": stats.get("respawns", 0),
                }
            payload["per_worker"] = per_worker
        return payload
