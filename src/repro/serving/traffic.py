"""Open-loop traffic generation for the serving front-end.

The load harness is **open-loop**: arrival instants are drawn up front from
a seeded Poisson process (exponential inter-arrival gaps at the configured
rate) and the driver submits each query at its scheduled instant whether or
not earlier queries have completed.  A closed-loop driver (next request
only after the previous reply) would let a slow server throttle its own
measured load and hide queueing collapse; open-loop pacing keeps offered
load an independent variable, so saturation shows up honestly as growing
queue delay and a widening achieved-versus-offered gap.

Generation is two-phase so it is deterministic end to end:

1. :func:`generate_trace` builds the complete :class:`TrafficTrace` --
   arrival offsets, query kinds drawn from the configured mix, weight
   vectors drawn from a hot/cold pool with the configured skew, and the
   concrete query objects (via :func:`repro.workloads.generator.make_query`)
   -- from a single seeded :class:`random.Random`.  Same seed, same trace,
   bit for bit, regardless of worker count or machine speed; the trace's
   ``fingerprint()`` hashes the whole schedule so benches can assert that.
2. :func:`run_trace` replays the trace against a front-end, pacing each
   submission with :meth:`ServingClock.sleep_until <repro.serving.recorder.ServingClock.sleep_until>`
   (lateness never stretches the schedule -- a driver that falls behind
   submits immediately and the backlog appears as queueing delay).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.queries import AnalyticQuery
from repro.core.records import Dataset, UtilityTemplate
from repro.serving.dispatcher import ServingFrontEnd, ServingTicket
from repro.workloads.generator import make_query, make_weight_vector

__all__ = ["TrafficConfig", "Arrival", "TrafficTrace", "generate_trace", "run_trace"]

#: Default query-kind mix (fractions; normalised at draw time).
DEFAULT_MIX: Mapping[str, float] = {"topk": 0.5, "range": 0.3, "knn": 0.2}


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one open-loop workload.

    ``rate`` is the offered arrival rate (queries/second of the Poisson
    process); ``hot_fraction`` of queries draw their weight vector from a
    small pool of ``hot_vectors`` (the skew that makes same-weight batching
    pay off), the rest from a larger pool of ``cold_vectors``.
    """

    rate: float = 50.0
    count: int = 200
    mix: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    hot_fraction: float = 0.8
    hot_vectors: int = 4
    cold_vectors: int = 32
    result_size: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate}")
        if self.count < 1:
            raise ValueError(f"a trace needs at least one query, got {self.count}")
        if not self.mix:
            raise ValueError("the query mix cannot be empty")
        if any(weight < 0 for weight in self.mix.values()) or not any(
            weight > 0 for weight in self.mix.values()
        ):
            raise ValueError(f"query mix needs non-negative weights summing > 0: {self.mix}")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in [0, 1], got {self.hot_fraction}")
        if self.hot_vectors < 1 or self.cold_vectors < 1:
            raise ValueError("hot and cold pools each need at least one weight vector")

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(self.mix)


@dataclass(frozen=True)
class Arrival:
    """One scheduled query: when it arrives and what it asks."""

    offset: float
    query: AnalyticQuery
    weight_id: str
    hot: bool

    @property
    def kind(self) -> str:
        return self.query.kind


@dataclass(frozen=True)
class TrafficTrace:
    """A fully materialised open-loop schedule."""

    config: TrafficConfig
    arrivals: Tuple[Arrival, ...]

    def __len__(self) -> int:
        return len(self.arrivals)

    @property
    def duration(self) -> float:
        """Offset of the last arrival (the schedule's nominal length)."""
        return self.arrivals[-1].offset if self.arrivals else 0.0

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for arrival in self.arrivals:
            counts[arrival.kind] = counts.get(arrival.kind, 0) + 1
        return counts

    def hot_count(self) -> int:
        return sum(1 for arrival in self.arrivals if arrival.hot)

    def fingerprint(self) -> str:
        """SHA-256 over the canonical schedule encoding.

        Covers arrival offsets (exact ``repr`` of the float), weight
        assignment and the full query parameters, so two traces with equal
        fingerprints schedule bit-identical work -- the determinism gate of
        ``--serve`` compares fingerprints across independent generations.
        """
        digest = hashlib.sha256()  # reprolint: disable=RL001 -- trace identity fingerprint, not a paper-counted hash
        for arrival in self.arrivals:
            digest.update(
                f"{arrival.offset!r}|{arrival.weight_id}|{arrival.query!r}\n".encode()
            )
        return digest.hexdigest()


def _draw_kind(mix: Mapping[str, float], total: float, rng: random.Random) -> str:
    point = rng.random() * total
    cumulative = 0.0
    for kind, weight in mix.items():
        cumulative += weight
        if point < cumulative:
            return kind
    return next(reversed(mix))  # only on floating-point edge of the last bin


def generate_trace(
    dataset: Dataset, template: UtilityTemplate, config: TrafficConfig
) -> TrafficTrace:
    """Materialise the full schedule from one seeded generator.

    Draw order is fixed (pools first, then per query: inter-arrival gap,
    kind, hot/cold, pool index, query parameters), so the same seed yields
    the same trace no matter how it is later replayed.
    """
    rng = random.Random(config.seed)
    functions = template.functions_for(dataset)

    def pool(tag: str, size: int) -> List[Tuple[str, Tuple[float, ...], List[float]]]:
        entries = []
        for position in range(size):
            weights = make_weight_vector(template, rng)
            scores = sorted(function.evaluate(weights) for function in functions)
            entries.append((f"{tag}-{position}", weights, scores))
        return entries

    hot_pool = pool("hot", config.hot_vectors)
    cold_pool = pool("cold", config.cold_vectors)
    mix_total = float(sum(config.mix.values()))

    arrivals: List[Arrival] = []
    offset = 0.0
    for _ in range(config.count):
        offset += rng.expovariate(config.rate)
        kind = _draw_kind(config.mix, mix_total, rng)
        hot = rng.random() < config.hot_fraction
        source = hot_pool if hot else cold_pool
        weight_id, weights, scores = source[rng.randrange(len(source))]
        query = make_query(kind, weights, scores, rng, config.result_size)
        arrivals.append(Arrival(offset=offset, query=query, weight_id=weight_id, hot=hot))
    return TrafficTrace(config=config, arrivals=tuple(arrivals))


def run_trace(
    frontend: ServingFrontEnd,
    trace: TrafficTrace,
    *,
    paced: bool = True,
    actions: Optional[Mapping[int, Callable[[], None]]] = None,
) -> List[ServingTicket]:
    """Replay a trace against a front-end; returns one ticket per arrival.

    With ``paced=True`` each query is submitted at its scheduled offset
    (late submissions go out immediately -- the schedule is never
    stretched); ``paced=False`` submits as fast as possible, which is the
    saturation-throughput mode.  ``actions`` maps a submission index to a
    callback invoked right after that query went out -- how the bench
    injects a mid-load
    :meth:`~repro.serving.dispatcher.ServingFrontEnd.broadcast_swap` or a
    worker crash at a deterministic point of the schedule.
    """
    clock = frontend.clock
    start = clock.now()
    tickets: List[ServingTicket] = []
    for position, arrival in enumerate(trace.arrivals):
        if paced:
            clock.sleep_until(start + arrival.offset)
        tickets.append(frontend.submit(arrival.query))
        if actions is not None and position in actions:
            actions[position]()
    frontend.flush()
    return tickets
