"""Multi-worker serving tier: process pool, batching dispatcher, load harness.

See ``docs/serving.md`` for the architecture and the ``--serve`` bench gate.
"""

from repro.serving.dispatcher import (
    ServingFrontEnd,
    ServingTicket,
    SwapBroadcast,
    WorkerProxy,
    wait_all,
)
from repro.serving.recorder import LatencyRecorder, ServingClock
from repro.serving.traffic import (
    Arrival,
    TrafficConfig,
    TrafficTrace,
    generate_trace,
    run_trace,
)
from repro.serving.worker import WorkerReply, worker_main

__all__ = [
    "Arrival",
    "LatencyRecorder",
    "ServingClock",
    "ServingFrontEnd",
    "ServingTicket",
    "SwapBroadcast",
    "TrafficConfig",
    "TrafficTrace",
    "WorkerProxy",
    "WorkerReply",
    "generate_trace",
    "run_trace",
    "wait_all",
    "worker_main",
]
