"""The serving worker process: one cold-started server behind two queues.

Each worker is a separate OS process that cold-starts its own
:class:`repro.core.server.Server` from the shared published artifact
(:meth:`Server.from_artifact` -- no re-hashing, own score cache, own
counters) and then loops over control messages from its request queue:

* ``("batch", batch_id, queries)`` -- run :meth:`Server.execute_batch`
  (same-weight queries share one subdomain search and one scoring pass) and
  reply with one picklable :class:`WorkerReply` per query, in order;
* ``("swap", path, base, expected_epoch)`` -- live hot-swap to a newer
  epoch's artifact; batches queued before the swap message finish on the
  entry epoch (the queue is FIFO), so a broadcast swap never tears a query;
* ``("crash", exit_code)`` -- die immediately via ``os._exit`` (the
  dispatcher's deterministic crash injection; the process vanishes without
  flushing anything, exactly like a SIGKILL);
* ``("stop",)`` -- acknowledge and exit cleanly.

Replies are plain tuples/dataclasses of results, verification objects and
counters -- everything the front-end needs to client-verify the answer --
and cross the process boundary by pickling.  The worker never consults the
wall clock except through ``time.perf_counter`` service-duration stamps
(RL010: scheduling decisions stay deterministic; durations only feed the
utilisation report).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.errors import ConstructionError, QueryProcessingError
from repro.core.queries import AnalyticQuery
from repro.core.results import QueryResult
from repro.core.server import Server
from repro.metrics.counters import Counters

__all__ = ["WorkerReply", "worker_main"]


@dataclass(frozen=True)
class WorkerReply:
    """One query's answer as shipped back over the reply queue."""

    query: AnalyticQuery
    result: QueryResult
    verification_object: object
    counters: Counters
    epoch: int

    @property
    def nodes_traversed(self) -> int:
        return self.counters.nodes_traversed


def _serve_batch(server: Server, reply_queue, worker_id: int, message: Tuple) -> None:
    _, batch_id, queries = message
    started = time.perf_counter()
    try:
        executions = server.execute_batch(queries)
    except QueryProcessingError as err:
        reply_queue.put(("batch-error", worker_id, batch_id, str(err)))
        return
    service_seconds = time.perf_counter() - started
    epoch = server.epoch
    replies = tuple(
        WorkerReply(
            query=execution.query,
            result=execution.result,
            verification_object=execution.verification_object,
            counters=execution.counters,
            epoch=epoch,
        )
        for execution in executions
    )
    reply_queue.put(("batch", worker_id, batch_id, replies, service_seconds))


def worker_main(
    worker_id: int,
    artifact_path: str,
    base: Optional[str],
    expected_epoch: Optional[int],
    request_queue,
    reply_queue,
) -> None:
    """Process entry point: cold-start from the artifact, then serve.

    Sends ``("ready", worker_id, epoch)`` once the artifact loaded (the
    dispatcher's start barrier), ``("start-error", worker_id, message)``
    when it cannot load, and then one reply per control message until
    ``stop`` or ``crash``.
    """
    try:
        server = Server.from_artifact(
            artifact_path, base=base, expected_epoch=expected_epoch
        )
    except ConstructionError as err:
        reply_queue.put(("start-error", worker_id, str(err)))
        return
    reply_queue.put(("ready", worker_id, server.epoch))
    while True:
        message = request_queue.get()
        kind = message[0]
        if kind == "batch":
            _serve_batch(server, reply_queue, worker_id, message)
        elif kind == "swap":
            _, path, swap_base, swap_epoch = message
            try:
                report = server.swap_epoch_from_artifact(
                    path, base=swap_base, expected_epoch=swap_epoch
                )
            except ConstructionError as err:
                reply_queue.put(("swap-error", worker_id, str(err)))
            else:
                reply_queue.put(("swapped", worker_id, report.new_epoch))
        elif kind == "crash":
            # Deterministic fault injection: die via ``os._exit``, no
            # farewell message -- the dispatcher must detect the death and
            # requeue whatever this worker still owed (everything behind
            # the crash message in the request queue is lost with the
            # process).  The reply feeder is flushed first so replies
            # already handed over are not torn mid-write on the *shared*
            # reply pipe, which would corrupt other workers' replies too.
            reply_queue.close()
            reply_queue.join_thread()
            os._exit(message[1] if len(message) > 1 else 1)
        elif kind == "stop":
            reply_queue.put(("stopped", worker_id))
            return
        else:
            reply_queue.put(("protocol-error", worker_id, f"unknown message {kind!r}"))
