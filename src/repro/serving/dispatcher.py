"""The multi-worker serving front-end: batching dispatcher over worker processes.

Architecture (one :class:`ServingFrontEnd` instance)::

    submit(query) ──> weight-keyed batcher ──> per-worker request queues
                        (max_batch / max_linger)        │ (N processes, each a
                                                        │  Server.from_artifact
    ServingTicket <── collector thread <── reply queue ─┘  cold start)

* **Batching.**  Queries are grouped by weight vector (the axis
  :meth:`repro.core.server.Server.execute_batch` amortizes: one subdomain
  search and one scoring pass per distinct weight vector).  A group is
  flushed to a worker when it reaches ``max_batch`` queries or when its
  oldest query has lingered ``max_linger`` seconds -- bounded batch size
  bounds per-query service cost, bounded linger bounds the latency a
  low-rate weight vector can pay waiting for co-batchees.
* **Routing.**  Batches go to the ready worker with the fewest outstanding
  queries (ties broken round-robin), over one multiprocessing queue per
  worker; replies multiplex onto one shared reply queue.
* **Crash recovery.**  A pump thread watches worker processes; when one
  dies, every batch it still owed (queued *or* in flight -- both are
  tracked in ``outstanding``) is requeued to the surviving workers and the
  worker is respawned from the current artifact, so a worker crash costs
  latency, never a dropped query.
* **Epoch hot-swap.**  :meth:`ServingFrontEnd.broadcast_swap` sends a swap
  control message down every worker's FIFO request queue: batches queued
  before the swap finish on their entry epoch (each reply carries the epoch
  that served it, so the front-end can verify against the matching public
  parameters), later batches run on the new epoch, and no query is dropped.
* **Resilience integration.**  :meth:`ServingFrontEnd.replica_pool` wraps
  each worker in a :class:`WorkerProxy` carrying the server ``execute``
  surface, so the whole front-end can sit behind
  :class:`repro.resilience.pool.ReplicaPool` /
  :class:`~repro.resilience.pool.ResilientClient` -- per-query verification,
  retry, failover and quarantine with worker processes as the replicas.

Determinism discipline (RL010): this module never reads the wall clock
directly -- all timestamps come from the injected
:class:`~repro.serving.recorder.ServingClock` -- and contains no
randomness at all; given the same trace and worker replies, every batching
and routing decision replays identically.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import threading
from dataclasses import dataclass, field
from queue import Empty
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConstructionError, QueryProcessingError
from repro.core.queries import AnalyticQuery
from repro.core.server import QueryExecution
from repro.serving.recorder import ServingClock
from repro.serving.worker import WorkerReply, worker_main

__all__ = [
    "ServingTicket",
    "ServingFrontEnd",
    "SwapBroadcast",
    "WorkerProxy",
    "wait_all",
]

#: Default batching policy: bounded batch size, bounded linger.
DEFAULT_MAX_BATCH = 8
DEFAULT_MAX_LINGER = 0.002
#: Default seconds to wait for all workers to cold-start.
DEFAULT_START_TIMEOUT = 120.0


class ServingTicket:
    """One submitted query's lifecycle: enqueue -> dispatch -> reply.

    The timestamps are stamped by the front-end from its
    :class:`ServingClock` (``enqueued_at`` at submission, ``dispatched_at``
    when the batch left for a worker, ``completed_at`` when the reply
    arrived) -- the enqueue-to-completion difference is the user-visible
    latency the recorder reports.  ``wait`` blocks until the reply (or
    error) is in.
    """

    __slots__ = (
        "ticket_id",
        "query",
        "enqueued_at",
        "dispatched_at",
        "completed_at",
        "worker_id",
        "reply",
        "error",
        "_event",
    )

    def __init__(self, ticket_id: int, query: AnalyticQuery, enqueued_at: float):
        self.ticket_id = ticket_id
        self.query = query
        self.enqueued_at = enqueued_at
        self.dispatched_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.worker_id: Optional[int] = None
        self.reply: Optional[WorkerReply] = None
        self.error: Optional[str] = None
        self._event = threading.Event()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.enqueued_at

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until resolved; returns False on timeout."""
        return self._event.wait(timeout)


def wait_all(
    tickets: Sequence[ServingTicket], timeout: float, clock: ServingClock
) -> List[ServingTicket]:
    """Wait for every ticket (shared deadline); returns the unresolved ones."""
    deadline = clock.now() + timeout
    pending: List[ServingTicket] = []
    for ticket in tickets:
        if not ticket.wait(max(0.0, deadline - clock.now())):
            pending.append(ticket)
    return pending


@dataclass(frozen=True)
class SwapBroadcast:
    """Outcome of one :meth:`ServingFrontEnd.broadcast_swap` call."""

    new_epoch: int
    swapped: Tuple[int, ...]
    errors: Tuple[str, ...]
    timed_out: Tuple[int, ...]

    @property
    def complete(self) -> bool:
        return not self.errors and not self.timed_out


@dataclass
class _WorkerSlot:
    """Dispatcher-side bookkeeping for one worker process."""

    worker_id: int
    process: object = None
    request_queue: object = None
    ready: bool = False
    epoch: Optional[int] = None
    start_error: Optional[str] = None
    served: int = 0
    batches: int = 0
    busy_seconds: float = 0.0
    respawns: int = 0
    outstanding: Dict[int, List[ServingTicket]] = field(default_factory=dict)

    @property
    def outstanding_queries(self) -> int:
        return sum(len(tickets) for tickets in self.outstanding.values())


class _WeightGroup:
    """Pending same-weight tickets waiting to fill a batch."""

    __slots__ = ("tickets", "oldest_enqueue")

    def __init__(self) -> None:
        self.tickets: List[ServingTicket] = []
        self.oldest_enqueue: Optional[float] = None


class ServingFrontEnd:
    """N worker processes behind one batching, crash-recovering dispatcher."""

    def __init__(
        self,
        artifact_path,
        workers: int = 4,
        *,
        base=None,
        expected_epoch: Optional[int] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_linger: float = DEFAULT_MAX_LINGER,
        clock: Optional[ServingClock] = None,
        auto_respawn: bool = True,
        start_timeout: float = DEFAULT_START_TIMEOUT,
    ):
        if workers < 1:
            raise ValueError(f"a serving front-end needs >= 1 worker, got {workers}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_linger < 0:
            raise ValueError(f"max_linger must be >= 0, got {max_linger}")
        self.artifact_path = str(artifact_path)
        self.workers = workers
        self.max_batch = max_batch
        self.max_linger = max_linger
        self.clock = clock if clock is not None else ServingClock()
        self.auto_respawn = auto_respawn
        self.start_timeout = start_timeout
        # Worker processes are forked where possible: the fork inherits the
        # already-imported interpreter, so a worker's cold-start cost is the
        # artifact load itself, matching the bench's cold-start story.
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._mp = multiprocessing.get_context()
        self._spec: Tuple[str, Optional[str], Optional[int]] = (
            self.artifact_path,
            str(base) if base is not None else None,
            expected_epoch,
        )
        self._lock = threading.Lock()
        self._state_changed = threading.Condition(self._lock)
        self._slots: Dict[int, _WorkerSlot] = {}
        self._pending: Dict[tuple, _WeightGroup] = {}
        self._reply_queue = None
        self._running = False
        self._ticket_counter = 0
        self._batch_counter = 0
        self._cursor = 0
        self._swap_pending: set = set()
        self._swap_errors: List[str] = []
        self._submitted = 0
        self._requeued = 0
        self._pump: Optional[threading.Thread] = None
        self._collector: Optional[threading.Thread] = None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "ServingFrontEnd":
        """Fork the workers, wait for every cold start, begin dispatching."""
        if self._running:
            raise RuntimeError("front-end already started")
        self._reply_queue = self._mp.Queue()
        with self._lock:
            self._running = True
            for worker_id in range(self.workers):
                self._slots[worker_id] = _WorkerSlot(worker_id=worker_id)
                self._spawn_locked(worker_id, count_respawn=False)
        self._collector = threading.Thread(
            target=self._collector_loop, name="serving-collector", daemon=True
        )
        self._collector.start()
        self._pump = threading.Thread(
            target=self._pump_loop, name="serving-pump", daemon=True
        )
        self._pump.start()
        deadline = self.clock.now() + self.start_timeout
        with self._state_changed:
            while True:
                errors = [
                    slot.start_error
                    for slot in self._slots.values()
                    if slot.start_error is not None
                ]
                if errors:
                    break
                if all(slot.ready for slot in self._slots.values()):
                    return self
                remaining = deadline - self.clock.now()
                if remaining <= 0:
                    errors = ["timed out waiting for workers to cold-start"]
                    break
                self._state_changed.wait(remaining)
        self.stop()
        raise ConstructionError(
            "serving front-end failed to start: " + "; ".join(errors)
        )

    def stop(self, timeout: float = 10.0) -> None:
        """Stop dispatching, ask workers to exit, reap the processes."""
        with self._lock:
            if not self._running and not self._slots:
                return
            self._running = False
            slots = list(self._slots.values())
        for slot in slots:
            if slot.process is not None and slot.process.is_alive():
                # The queue may already be torn down when stop() races a
                # crashing worker; a lost stop message is harmless (the
                # process gets terminated below).
                with contextlib.suppress(OSError, ValueError):
                    slot.request_queue.put(("stop",))
        for slot in slots:
            if slot.process is not None:
                slot.process.join(timeout)
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(timeout)
        for thread in (self._pump, self._collector):
            if thread is not None:
                thread.join(timeout)
        self._pump = None
        self._collector = None

    def __enter__(self) -> "ServingFrontEnd":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------ submission
    def submit(self, query: AnalyticQuery) -> ServingTicket:
        """Enqueue one query; returns its ticket immediately (open loop)."""
        with self._lock:
            if not self._running:
                raise RuntimeError("front-end is not running")
            ticket = ServingTicket(
                ticket_id=self._ticket_counter,
                query=query,
                enqueued_at=self.clock.now(),
            )
            self._ticket_counter += 1
            self._submitted += 1
            self._enqueue_locked(ticket)
        return ticket

    def submit_many(self, queries: Sequence[AnalyticQuery]) -> List[ServingTicket]:
        return [self.submit(query) for query in queries]

    def flush(self) -> None:
        """Dispatch every pending group regardless of size or linger."""
        with self._lock:
            for key in list(self._pending):
                self._flush_group_locked(key)

    def drain(self, tickets: Sequence[ServingTicket], timeout: float = 30.0) -> None:
        """Flush and wait until every ticket resolves (raises on timeout)."""
        self.flush()
        pending = wait_all(tickets, timeout, self.clock)
        if pending:
            raise TimeoutError(
                f"{len(pending)} of {len(tickets)} queries unresolved after {timeout}s"
            )

    # ------------------------------------------------------------- hot swap
    def broadcast_swap(
        self,
        path,
        *,
        base=None,
        expected_epoch: Optional[int] = None,
        timeout: float = 30.0,
    ) -> SwapBroadcast:
        """Hot-swap every worker to a newer epoch without dropping queries.

        The swap message rides each worker's FIFO request queue behind any
        already-dispatched batches, so in-flight work finishes on its entry
        epoch.  Workers that die mid-swap are respawned from the *new*
        artifact (the respawn spec is updated first), which counts as
        swapped once their cold start completes.
        """
        if expected_epoch is None:
            from repro.core.artifact import load_public_parameters

            expected_epoch = load_public_parameters(path).epoch
        with self._lock:
            if not self._running:
                raise RuntimeError("front-end is not running")
            self._spec = (
                str(path),
                str(base) if base is not None else None,
                expected_epoch,
            )
            self._swap_errors = []
            self._swap_pending = {
                slot.worker_id for slot in self._slots.values() if slot.ready
            }
            for slot in self._slots.values():
                if slot.ready:
                    slot.request_queue.put(
                        ("swap", str(path), self._spec[1], expected_epoch)
                    )
        deadline = self.clock.now() + timeout
        with self._state_changed:
            while self._swap_pending:
                remaining = deadline - self.clock.now()
                if remaining <= 0:
                    break
                self._state_changed.wait(remaining)
            timed_out = tuple(sorted(self._swap_pending))
            self._swap_pending = set()
            swapped = tuple(
                sorted(
                    slot.worker_id
                    for slot in self._slots.values()
                    if slot.epoch == expected_epoch
                )
            )
            return SwapBroadcast(
                new_epoch=expected_epoch,
                swapped=swapped,
                errors=tuple(self._swap_errors),
                timed_out=timed_out,
            )

    # ------------------------------------------------------- fault injection
    def inject_crash(self, worker_id: int) -> None:
        """Deterministically kill one worker (it dies mid-queue, un-flushed)."""
        with self._lock:
            slot = self._slot_locked(worker_id)
            slot.request_queue.put(("crash", 1))

    def respawn(self, worker_id: int) -> None:
        """Manually respawn a dead worker from the current artifact spec."""
        with self._lock:
            slot = self._slot_locked(worker_id)
            if slot.process is not None and slot.process.is_alive():
                raise RuntimeError(f"worker {worker_id} is still alive")
            self._recover_worker_locked(slot)

    # ------------------------------------------------------------ resilience
    def replica_pool(self, **pool_kwargs):
        """The workers as a :class:`repro.resilience.pool.ReplicaPool`.

        Each worker becomes a :class:`WorkerProxy` replica with the server
        ``execute`` surface; pool semantics (round-robin, quarantine,
        half-open probing) and :class:`ResilientClient` verification then
        apply to worker processes exactly as to in-process servers.
        """
        from repro.resilience.pool import ReplicaPool

        return ReplicaPool(
            [WorkerProxy(self, worker_id) for worker_id in sorted(self._slots)],
            **pool_kwargs,
        )

    def wait_ready(self, worker_id: int, timeout: float = 30.0) -> bool:
        """Block until a worker reports ready (e.g. after a respawn).

        A respawned worker cold-starts from the artifact; callers that
        dispatch to it directly (``execute_on``) should wait here first.
        Returns ``False`` on timeout instead of raising so pollers can
        keep their own deadline policy.
        """
        with self._state_changed:
            slot = self._slot_locked(worker_id)
            deadline = self.clock.now() + timeout
            while not slot.ready:
                remaining = deadline - self.clock.now()
                if remaining <= 0.0 or not self._running:
                    return False
                self._state_changed.wait(remaining)
            return True

    def execute_on(
        self, worker_id: int, query: AnalyticQuery, timeout: float = 30.0
    ) -> WorkerReply:
        """One query straight to one worker, bypassing the batcher.

        The single-replica path :class:`WorkerProxy` builds on; raises
        :class:`QueryProcessingError` when the worker is down, errors or
        misses the deadline (all three are "replica fault" to a pool).
        """
        with self._lock:
            slot = self._slot_locked(worker_id)
            if not self._running:
                raise RuntimeError("front-end is not running")
            if not slot.ready:
                raise QueryProcessingError(f"worker {worker_id} is not serving")
            ticket = ServingTicket(
                ticket_id=self._ticket_counter,
                query=query,
                enqueued_at=self.clock.now(),
            )
            self._ticket_counter += 1
            self._submitted += 1
            self._dispatch_locked(slot, [ticket])
        if not ticket.wait(timeout):
            raise QueryProcessingError(
                f"worker {worker_id} missed the {timeout}s reply deadline"
            )
        if ticket.error is not None:
            raise QueryProcessingError(
                f"worker {worker_id} failed the query: {ticket.error}"
            )
        return ticket.reply

    # ------------------------------------------------------------ inspection
    def worker_stats(self) -> Dict[int, Dict[str, object]]:
        with self._lock:
            return {
                slot.worker_id: {
                    "ready": slot.ready,
                    "epoch": slot.epoch,
                    "served": slot.served,
                    "batches": slot.batches,
                    "busy_seconds": slot.busy_seconds,
                    "respawns": slot.respawns,
                    "outstanding": slot.outstanding_queries,
                }
                for slot in self._slots.values()
            }

    @property
    def submitted(self) -> int:
        return self._submitted

    @property
    def requeued(self) -> int:
        """Queries re-dispatched after their worker died (never dropped)."""
        return self._requeued

    def epochs(self) -> Dict[int, Optional[int]]:
        with self._lock:
            return {slot.worker_id: slot.epoch for slot in self._slots.values()}

    # ------------------------------------------------------------- internals
    def _slot_locked(self, worker_id: int) -> _WorkerSlot:
        try:
            return self._slots[worker_id]
        except KeyError:
            raise KeyError(f"no worker with id {worker_id}") from None

    def _spawn_locked(self, worker_id: int, *, count_respawn: bool) -> None:
        slot = self._slots[worker_id]
        path, base, expected_epoch = self._spec
        slot.request_queue = self._mp.Queue()
        slot.ready = False
        slot.start_error = None
        if count_respawn:
            slot.respawns += 1
        slot.process = self._mp.Process(
            target=worker_main,
            args=(
                worker_id,
                path,
                base,
                expected_epoch,
                slot.request_queue,
                self._reply_queue,
            ),
            daemon=True,
            name=f"serving-worker-{worker_id}",
        )
        slot.process.start()

    def _enqueue_locked(self, ticket: ServingTicket) -> None:
        key = tuple(ticket.query.weights)
        group = self._pending.get(key)
        if group is None:
            group = self._pending[key] = _WeightGroup()
        if not group.tickets:
            group.oldest_enqueue = self.clock.now()
        group.tickets.append(ticket)
        if len(group.tickets) >= self.max_batch:
            self._flush_group_locked(key)

    def _flush_group_locked(self, key: tuple) -> None:
        group = self._pending.get(key)
        if group is None or not group.tickets:
            return
        slot = self._pick_worker_locked()
        if slot is None:
            return  # no ready worker right now; the pump retries after respawn
        del self._pending[key]
        self._dispatch_locked(slot, group.tickets)

    def _pick_worker_locked(self) -> Optional[_WorkerSlot]:
        ready = [slot for slot in self._slots.values() if slot.ready]
        if not ready:
            return None
        count = len(self._slots)
        chosen = min(
            ready,
            key=lambda slot: (
                slot.outstanding_queries,
                (slot.worker_id - self._cursor) % count,
            ),
        )
        self._cursor = (chosen.worker_id + 1) % count
        return chosen

    def _dispatch_locked(self, slot: _WorkerSlot, tickets: List[ServingTicket]) -> None:
        batch_id = self._batch_counter
        self._batch_counter += 1
        now = self.clock.now()
        for ticket in tickets:
            ticket.dispatched_at = now
        slot.outstanding[batch_id] = tickets
        slot.request_queue.put(
            ("batch", batch_id, [ticket.query for ticket in tickets])
        )

    def _recover_worker_locked(self, slot: _WorkerSlot) -> None:
        """Requeue a dead worker's owed queries, then respawn it."""
        slot.ready = False
        orphans = [
            ticket
            for tickets in slot.outstanding.values()
            for ticket in tickets
            if not ticket.done
        ]
        slot.outstanding = {}
        for ticket in orphans:
            self._requeued += 1
            self._enqueue_locked(ticket)
        self._swap_pending.discard(slot.worker_id)
        self._state_changed.notify_all()
        if self._running:
            self._spawn_locked(slot.worker_id, count_respawn=True)

    # --------------------------------------------------------------- threads
    def _pump_loop(self) -> None:
        """Linger-based flushing plus worker-death detection."""
        tick = max(0.0005, self.max_linger / 2) if self.max_linger else 0.002
        while True:
            with self._state_changed:
                if not self._running:
                    return
                now = self.clock.now()
                for key, group in list(self._pending.items()):
                    if (
                        group.tickets
                        and now - group.oldest_enqueue >= self.max_linger
                    ):
                        self._flush_group_locked(key)
                for slot in self._slots.values():
                    if (
                        slot.process is not None
                        and not slot.process.is_alive()
                        and (slot.ready or slot.outstanding)
                    ):
                        if self.auto_respawn:
                            self._recover_worker_locked(slot)
                        else:
                            slot.ready = False
                            self._swap_pending.discard(slot.worker_id)
                            self._state_changed.notify_all()
            self.clock.sleep(tick)

    def _collector_loop(self) -> None:
        """Drain the shared reply queue and resolve tickets."""
        while True:
            try:
                message = self._reply_queue.get(timeout=0.05)
            except Empty:
                if not self._running:
                    return
                continue
            except (EOFError, OSError):  # queue torn down during stop
                return
            kind = message[0]
            with self._state_changed:
                if kind == "batch":
                    self._on_batch_locked(message)
                elif kind == "batch-error":
                    self._on_batch_error_locked(message)
                elif kind == "ready":
                    _, worker_id, epoch = message
                    slot = self._slots.get(worker_id)
                    if slot is not None:
                        slot.ready = True
                        slot.epoch = epoch
                elif kind == "swapped":
                    _, worker_id, epoch = message
                    slot = self._slots.get(worker_id)
                    if slot is not None:
                        slot.epoch = epoch
                    self._swap_pending.discard(worker_id)
                elif kind == "swap-error":
                    _, worker_id, detail = message
                    self._swap_errors.append(f"worker {worker_id}: {detail}")
                    self._swap_pending.discard(worker_id)
                elif kind == "start-error":
                    _, worker_id, detail = message
                    slot = self._slots.get(worker_id)
                    if slot is not None:
                        slot.start_error = detail
                elif kind == "stopped":
                    pass
                self._state_changed.notify_all()

    def _on_batch_locked(self, message) -> None:
        _, worker_id, batch_id, replies, service_seconds = message
        slot = self._slots.get(worker_id)
        if slot is None:
            return
        tickets = slot.outstanding.pop(batch_id, None)
        if tickets is None:
            return  # batch was requeued after a presumed death; late reply
        slot.batches += 1
        slot.busy_seconds += service_seconds
        now = self.clock.now()
        for ticket, reply in zip(tickets, replies):
            if ticket.done:
                continue  # already resolved by a requeued duplicate
            ticket.reply = reply
            ticket.worker_id = worker_id
            ticket.completed_at = now
            slot.served += 1
            ticket._event.set()

    def _on_batch_error_locked(self, message) -> None:
        _, worker_id, batch_id, detail = message
        slot = self._slots.get(worker_id)
        if slot is None:
            return
        tickets = slot.outstanding.pop(batch_id, None)
        if tickets is None:
            return
        now = self.clock.now()
        for ticket in tickets:
            if ticket.done:
                continue
            ticket.error = detail
            ticket.worker_id = worker_id
            ticket.completed_at = now
            ticket._event.set()


class WorkerProxy:
    """One serving worker presented through the server ``execute`` surface.

    Makes a worker *process* a drop-in replica for
    :class:`repro.resilience.pool.ReplicaPool`: ``execute`` raises
    :class:`QueryProcessingError` when the worker is dead, errors or times
    out (the pool's "replica fault, try another one"), and ``epoch``
    exposes the worker's current ADS epoch for staleness accounting.
    """

    def __init__(self, frontend: ServingFrontEnd, worker_id: int, timeout: float = 30.0):
        self.frontend = frontend
        self.worker_id = worker_id
        self.timeout = timeout

    @property
    def epoch(self) -> Optional[int]:
        return self.frontend.epochs().get(self.worker_id)

    def execute(self, query: AnalyticQuery) -> QueryExecution:
        reply = self.frontend.execute_on(self.worker_id, query, timeout=self.timeout)
        return QueryExecution(
            query=reply.query,
            result=reply.result,
            verification_object=reply.verification_object,
            counters=reply.counters,
        )
