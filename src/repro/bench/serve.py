"""Serving-tier benchmark (``--serve``): the multi-worker front-end gate.

Four phases, one per serving claim:

1. **Workload determinism** -- the open-loop trace (Poisson arrivals, query
   mix, hot/cold weight skew) is generated twice from the same seed and
   must fingerprint identically (and differently for a different seed):
   offered load is a pure function of the seed, never of machine speed or
   worker count.

2. **Throughput scaling** -- the same unpaced (saturation) trace is pushed
   through a single-worker and an N-worker front-end; N workers must clear
   a throughput floor over one.  The floor is **hardware-scaled**: workers
   are OS processes, so the achievable speedup is bounded by physical
   cores, not by the worker count.  With ``effective = min(workers,
   available_cores())`` -- the affinity-aware core count of
   :mod:`repro.core.parallel`, so cgroup/affinity-limited CI runners get a
   reachable floor -- the gate demands ``min(4.0, 0.5 * effective)`` for the
   full run (i.e. the issue's 4x at 8 workers on an 8-core box) and
   ``min(2.0, 0.45 * effective)`` for the smoke gate; on a single-core
   machine, where true parallel speedup is impossible, the gate instead
   bounds the *overhead* of the multi-process path (floor
   ``SINGLE_CORE_OVERHEAD_FLOOR`` of single-worker throughput).

3. **Paced latency** -- the paced trace runs at its offered rate (chosen
   well under single-core capacity); p99 enqueue-to-verified-reply latency
   must stay under ``SERVE_P99_BOUND``, zero queries may drop, and every
   sampled answer must client-verify against the published parameters.

4. **Churn** -- mid-trace the bench broadcasts a hot swap to a freshly
   published epoch *and* deterministically crashes one worker.  Zero
   queries may drop, every answer must verify against the epoch that
   served it (entry-epoch answers against epoch 0, post-swap answers
   against epoch 1), both epochs must actually appear, and the crashed
   worker must be respawned from the artifact and serve a verified answer
   again.

``python -m repro.bench --serve`` runs the full workload and writes
``BENCH_serve.json``; ``--serve --smoke`` is the reduced CI gate (writes
``BENCH_serve_smoke.json``).
"""

from __future__ import annotations

import json
import os
import random
import tempfile
from typing import Dict, List, Optional, Tuple

from repro.bench.harness import ExperimentResult
from repro.core.client import Client
from repro.core.config import SystemConfig
from repro.core.owner import DataOwner
from repro.core.parallel import available_cores
from repro.core.queries import TopKQuery
from repro.core.records import Record
from repro.crypto.signer import make_signer
from repro.serving.dispatcher import ServingFrontEnd
from repro.serving.recorder import LatencyRecorder
from repro.serving.traffic import TrafficConfig, generate_trace, run_trace
from repro.workloads.generator import WorkloadConfig, make_dataset, make_template

__all__ = [
    "SERVE_WORKERS",
    "SERVE_N_RECORDS",
    "SERVE_P99_BOUND",
    "SINGLE_CORE_OVERHEAD_FLOOR",
    "SERVE_REPORT_FILENAME",
    "SMOKE_SERVE_WORKERS",
    "SMOKE_SERVE_N_RECORDS",
    "SMOKE_SERVE_REPORT_FILENAME",
    "throughput_floor",
    "run_serve",
    "run_serve_smoke",
]

#: Full-run shape: worker count, database size, trace lengths and rate.
SERVE_WORKERS = 8
SERVE_N_RECORDS = 200
SERVE_SAT_COUNT = 300
SERVE_PACED_COUNT = 300
SERVE_RATE = 100.0
SERVE_REPORT_FILENAME = "BENCH_serve.json"

#: Reduced CI gate shape.
SMOKE_SERVE_WORKERS = 4
SMOKE_SERVE_N_RECORDS = 60
SMOKE_SERVE_SAT_COUNT = 120
SMOKE_SERVE_PACED_COUNT = 120
SMOKE_SERVE_RATE = 80.0
SMOKE_SERVE_REPORT_FILENAME = "BENCH_serve_smoke.json"

#: p99 enqueue-to-verified-reply bound for the paced phase (seconds).  The
#: offered rate is far below capacity, so a healthy front-end sits in the
#: low milliseconds; the bound only has to exclude queueing collapse while
#: tolerating a noisy shared CI machine.
SERVE_P99_BOUND = 1.0

#: Single-core throughput gate: with one physical core an N-worker
#: front-end cannot beat one worker, so the gate bounds the multi-process
#: overhead instead -- N workers must retain at least this fraction of
#: single-worker saturation throughput.
SINGLE_CORE_OVERHEAD_FLOOR = 0.5

#: Hot/cold weight-vector skew of the generated workload.
SERVE_HOT_VECTORS = 4
SERVE_COLD_VECTORS = 24
SERVE_HOT_FRACTION = 0.8


def throughput_floor(workers: int, *, smoke: bool, cores: Optional[int] = None) -> float:
    """The hardware-scaled N-worker-over-one-worker throughput floor.

    ``min(workers, cores)`` is the parallelism physically available to a
    process-per-worker front-end; demanding a fixed 4x regardless of the
    machine would make the gate unpassable on small runners and toothless
    on large ones.  On one core the returned floor is the overhead bound
    (see :data:`SINGLE_CORE_OVERHEAD_FLOOR`).
    """
    if cores is None:
        cores = available_cores()
    effective = max(1, min(workers, cores))
    if effective == 1:
        return SINGLE_CORE_OVERHEAD_FLOOR
    if smoke:
        return min(2.0, 0.45 * effective)
    return min(4.0, 0.5 * effective)


def _build_setup(n_records: int, seed: int, directory: str) -> Dict[str, object]:
    """Owner-side setup: epoch-0 artifact plus a delta-published epoch 1."""
    workload = WorkloadConfig(n_records=n_records, dimension=1, seed=seed)
    dataset = make_dataset(workload)
    template = make_template(workload)
    config = SystemConfig(scheme="one-signature", signature_algorithm="hmac")
    keypair = make_signer("hmac", rng=random.Random(seed + 99))
    owner = DataOwner(dataset, template, config=config, keypair=keypair)
    base_path = os.path.join(directory, "ads-epoch0.npz")
    owner.publish(base_path)
    low, high = workload.value_range
    rng = random.Random(seed + 17)
    inserts = [
        Record(
            record_id=n_records + position,
            values=(rng.uniform(low, high), rng.uniform(low, high)),
        )
        for position in range(2)
    ]
    owner.apply_updates(inserts=inserts, deletes=[seed % n_records])
    next_path = os.path.join(directory, "ads-epoch1.npz")
    owner.publish(next_path, base=base_path)
    return {
        "dataset": dataset,
        "template": template,
        "base_path": base_path,
        "next_path": next_path,
    }


def _determinism_phase(setup: Dict[str, object], config: TrafficConfig) -> Dict[str, object]:
    """Same seed must fingerprint identically; a different seed must not."""
    first = generate_trace(setup["dataset"], setup["template"], config)
    second = generate_trace(setup["dataset"], setup["template"], config)
    shifted = generate_trace(
        setup["dataset"],
        setup["template"],
        TrafficConfig(
            rate=config.rate,
            count=config.count,
            mix=dict(config.mix),
            hot_fraction=config.hot_fraction,
            hot_vectors=config.hot_vectors,
            cold_vectors=config.cold_vectors,
            result_size=config.result_size,
            seed=config.seed + 1,
        ),
    )
    return {
        "fingerprint": first.fingerprint(),
        "same_seed_identical": first.fingerprint() == second.fingerprint(),
        "different_seed_differs": first.fingerprint() != shifted.fingerprint(),
        "kind_counts": first.kind_counts(),
        "hot_count": first.hot_count(),
    }


def _saturation_rate(
    artifact_path: str, workers: int, trace, timeout: float
) -> Tuple[float, int]:
    """Unpaced saturation throughput (completed/s) of one front-end shape."""
    with ServingFrontEnd(artifact_path, workers=workers) as frontend:
        tickets = run_trace(frontend, trace, paced=False)
        frontend.drain(tickets, timeout=timeout)
        recorder = LatencyRecorder()
        recorder.observe_all(tickets)
        summary = recorder.summary()
        return float(summary["achieved_rate"]), int(summary["completed"])


def _throughput_phase(
    setup: Dict[str, object], trace, workers: int, *, smoke: bool
) -> Dict[str, object]:
    single_rate, single_done = _saturation_rate(setup["base_path"], 1, trace, 120.0)
    multi_rate, multi_done = _saturation_rate(setup["base_path"], workers, trace, 120.0)
    floor = throughput_floor(workers, smoke=smoke)
    speedup = multi_rate / single_rate if single_rate > 0 else 0.0
    return {
        "workers": workers,
        "cores": available_cores(),
        "single_rate": single_rate,
        "multi_rate": multi_rate,
        "speedup": speedup,
        "floor": floor,
        "floor_met": speedup >= floor,
        "single_completed": single_done,
        "multi_completed": multi_done,
    }


def _paced_phase(
    setup: Dict[str, object], trace, workers: int
) -> Dict[str, object]:
    """Paced open-loop run: latency, drops and 100% sampled verification."""
    client = Client.from_artifact(setup["base_path"])
    with ServingFrontEnd(setup["base_path"], workers=workers) as frontend:
        tickets = run_trace(frontend, trace, paced=True)
        frontend.drain(tickets, timeout=120.0)
        stats = frontend.worker_stats()
    recorder = LatencyRecorder()
    recorder.observe_all(tickets)
    summary = recorder.summary(offered_rate=trace.config.rate, worker_stats=stats)
    verified = sum(
        1
        for ticket in tickets
        if ticket.reply is not None
        and client.verify(
            ticket.reply.query,
            ticket.reply.result,
            ticket.reply.verification_object,
        ).is_valid
    )
    summary["sampled"] = len(tickets)
    summary["verified"] = verified
    return summary


def _churn_phase(
    setup: Dict[str, object], trace, workers: int
) -> Dict[str, object]:
    """Mid-trace hot swap plus a deterministic worker crash; zero drops."""
    clients = {
        0: Client.from_artifact(setup["base_path"]),
        1: Client.from_artifact(setup["next_path"]),
    }
    crash_worker = workers - 1
    swap_outcome: Dict[str, object] = {}
    with ServingFrontEnd(setup["base_path"], workers=workers) as frontend:

        def inject_swap() -> None:
            broadcast = frontend.broadcast_swap(
                setup["next_path"], base=setup["base_path"]
            )
            swap_outcome["new_epoch"] = broadcast.new_epoch
            swap_outcome["complete"] = broadcast.complete
            swap_outcome["swapped"] = list(broadcast.swapped)
            swap_outcome["errors"] = list(broadcast.errors)

        actions = {
            len(trace) // 4: lambda: frontend.inject_crash(crash_worker),
            len(trace) // 2: inject_swap,
        }
        tickets = run_trace(frontend, trace, paced=True, actions=actions)
        frontend.drain(tickets, timeout=120.0)
        requeued = frontend.requeued
        # The respawned worker must serve a verified answer again; dispatch
        # to it directly so the proof does not depend on routing luck.  It
        # may still be cold-starting right after the drain.
        frontend.wait_ready(crash_worker, timeout=60.0)
        probe = frontend.execute_on(
            crash_worker, TopKQuery(weights=trace.arrivals[0].query.weights, k=2)
        )
        probe_valid = (
            clients[min(probe.epoch, 1)]
            .verify(probe.query, probe.result, probe.verification_object)
            .is_valid
        )
        stats = frontend.worker_stats()
    dropped = sum(1 for ticket in tickets if not ticket.done)
    errored = sum(1 for ticket in tickets if ticket.error is not None)
    by_epoch: Dict[int, int] = {}
    verified = 0
    for ticket in tickets:
        if ticket.reply is None:
            continue
        epoch = ticket.reply.epoch
        by_epoch[epoch] = by_epoch.get(epoch, 0) + 1
        verifier = clients.get(epoch)
        if verifier is not None and verifier.verify(
            ticket.reply.query, ticket.reply.result, ticket.reply.verification_object
        ).is_valid:
            verified += 1
    respawns = sum(int(stat["respawns"]) for stat in stats.values())
    return {
        "issued": len(tickets),
        "dropped": dropped,
        "errored": errored,
        "verified": verified,
        "by_epoch": {str(epoch): count for epoch, count in sorted(by_epoch.items())},
        "requeued": requeued,
        "respawns": respawns,
        "crashed_worker": crash_worker,
        "crashed_worker_served_again": probe_valid,
        "swap": swap_outcome,
    }


def run_serve(
    *,
    workers: int = SERVE_WORKERS,
    n_records: int = SERVE_N_RECORDS,
    sat_count: int = SERVE_SAT_COUNT,
    paced_count: int = SERVE_PACED_COUNT,
    rate: float = SERVE_RATE,
    seed: int = 0,
    smoke: bool = False,
    output_path: Optional[str] = SERVE_REPORT_FILENAME,
) -> Tuple[List[ExperimentResult], List[str]]:
    """Run the serving benchmark and gate the front-end claims.

    Returns ``(results, failures)``; an empty failure list means the
    workload generator is seed-deterministic, N workers cleared the
    hardware-scaled throughput floor, paced p99 stayed bounded with zero
    drops and 100% of sampled answers verified, and the churn phase (mid-run
    epoch swap plus a worker crash) dropped nothing, verified everything
    against the serving epoch and respawned the crashed worker back into
    service.  When ``output_path`` is set the outcome is written there as
    JSON.
    """
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as directory:
        setup = _build_setup(n_records, seed, directory)
        sat_config = TrafficConfig(
            rate=rate,
            count=sat_count,
            hot_fraction=SERVE_HOT_FRACTION,
            hot_vectors=SERVE_HOT_VECTORS,
            cold_vectors=SERVE_COLD_VECTORS,
            seed=seed + 1,
        )
        paced_config = TrafficConfig(
            rate=rate,
            count=paced_count,
            hot_fraction=SERVE_HOT_FRACTION,
            hot_vectors=SERVE_HOT_VECTORS,
            cold_vectors=SERVE_COLD_VECTORS,
            seed=seed + 2,
        )
        determinism = _determinism_phase(setup, sat_config)
        sat_trace = generate_trace(setup["dataset"], setup["template"], sat_config)
        paced_trace = generate_trace(setup["dataset"], setup["template"], paced_config)
        throughput = _throughput_phase(setup, sat_trace, workers, smoke=smoke)
        paced = _paced_phase(setup, paced_trace, workers)
        churn = _churn_phase(setup, paced_trace, workers)

    failures: List[str] = []
    if not determinism["same_seed_identical"]:
        failures.append(
            "same-seed trace generation diverged; the open-loop workload "
            "must be a pure function of the seed"
        )
    if not determinism["different_seed_differs"]:
        failures.append(
            "different seeds produced identical traces; the fingerprint is "
            "not covering the schedule"
        )
    if not throughput["floor_met"]:
        failures.append(
            f"{throughput['workers']}-worker saturation throughput is only "
            f"{throughput['speedup']:.2f}x one worker "
            f"({throughput['multi_rate']:.0f} vs {throughput['single_rate']:.0f} q/s) "
            f"on {throughput['cores']} core(s); the hardware-scaled floor is "
            f"{throughput['floor']:.2f}x"
        )
    p99 = paced["latency"]["p99"] if paced["latency"] else float("inf")
    if p99 > SERVE_P99_BOUND:
        failures.append(
            f"paced p99 latency {p99 * 1000:.1f}ms exceeds the "
            f"{SERVE_P99_BOUND * 1000:.0f}ms bound; the front-end is "
            "queueing far beyond its offered load"
        )
    if paced["dropped"]:
        failures.append(
            f"{paced['dropped']} queries dropped in the paced phase; an "
            "accepted query must always resolve"
        )
    if paced["verified"] != paced["sampled"]:
        failures.append(
            f"only {paced['verified']} of {paced['sampled']} sampled answers "
            "client-verified; every served answer must verify"
        )
    if churn["dropped"] or churn["errored"]:
        failures.append(
            f"churn phase dropped {churn['dropped']} and errored "
            f"{churn['errored']} queries across the epoch swap and worker "
            "crash; recovery must requeue, never drop"
        )
    if churn["verified"] != churn["issued"]:
        failures.append(
            f"only {churn['verified']} of {churn['issued']} churn answers "
            "verified against the epoch that served them"
        )
    if not churn["swap"].get("complete", False):
        failures.append(
            f"the mid-run epoch swap did not complete on every worker: "
            f"{churn['swap']}"
        )
    if len(churn["by_epoch"]) < 2:
        failures.append(
            f"churn answers came from epochs {sorted(churn['by_epoch'])}; the "
            "swap must land mid-load so both epochs serve"
        )
    if not churn["respawns"]:
        failures.append(
            "the injected worker crash never triggered a respawn; crash "
            "recovery was not exercised"
        )
    if not churn["crashed_worker_served_again"]:
        failures.append(
            f"worker {churn['crashed_worker']} did not serve a verified "
            "answer after its respawn; recovery must restore full capacity"
        )

    result = ExperimentResult(
        experiment_id="serve-frontend",
        title="Multi-worker serving under open-loop load, hot swap and crashes",
        parameters={
            "seed": seed,
            "n": n_records,
            "workers": workers,
            "cores": throughput["cores"],
            "rate": rate,
            "floor": throughput["floor"],
            "p99_bound": SERVE_P99_BOUND,
        },
        columns=(
            "single_qps",
            "multi_qps",
            "speedup",
            "p99_ms",
            "dropped",
            "verified",
            "churn_dropped",
            "churn_verified",
            "respawns",
        ),
    )
    result.add_row(
        single_qps=round(throughput["single_rate"], 1),
        multi_qps=round(throughput["multi_rate"], 1),
        speedup=round(throughput["speedup"], 2),
        p99_ms=round(p99 * 1000, 2),
        dropped=paced["dropped"],
        verified=f"{paced['verified']}/{paced['sampled']}",
        churn_dropped=churn["dropped"],
        churn_verified=f"{churn['verified']}/{churn['issued']}",
        respawns=churn["respawns"],
    )

    if output_path is not None:
        payload = {
            "benchmark": "serve-frontend",
            "seed": seed,
            "n": n_records,
            "workers": workers,
            "smoke": smoke,
            "p99_bound": SERVE_P99_BOUND,
            "determinism": determinism,
            "throughput": throughput,
            "paced": paced,
            "churn": churn,
        }
        with open(output_path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
    return [result], failures


def run_serve_smoke(
    seed: int = 0, output_path: Optional[str] = SMOKE_SERVE_REPORT_FILENAME
) -> Tuple[List[ExperimentResult], List[str]]:
    """Reduced serving gate for CI (same code path and gates)."""
    return run_serve(
        workers=SMOKE_SERVE_WORKERS,
        n_records=SMOKE_SERVE_N_RECORDS,
        sat_count=SMOKE_SERVE_SAT_COUNT,
        paced_count=SMOKE_SERVE_PACED_COUNT,
        rate=SMOKE_SERVE_RATE,
        seed=seed,
        smoke=True,
        output_path=output_path,
    )
