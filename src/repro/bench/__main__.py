"""Run every figure experiment and print the tables.

Usage::

    python -m repro.bench                 # default (laptop-friendly) scales
    python -m repro.bench --n 20 40 60    # custom database-size sweep
    python -m repro.bench --quick         # smallest scales, hmac signatures
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.figures import all_experiments
from repro.bench.harness import BenchConfig
from repro.bench.reporting import render_results


def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce every figure of the paper's evaluation as a table.",
    )
    parser.add_argument("--n", type=int, nargs="+", default=None, help="database-size sweep")
    parser.add_argument("--fixed-n", type=int, default=None, help="database size for |q| sweeps")
    parser.add_argument(
        "--result-sizes", type=int, nargs="+", default=None, help="result-length sweep"
    )
    parser.add_argument("--queries", type=int, default=None, help="queries per data point")
    parser.add_argument(
        "--algorithm", choices=("rsa", "dsa", "hmac"), default=None, help="signature algorithm"
    )
    parser.add_argument("--key-bits", type=int, default=None, help="signature key size")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--quick", action="store_true", help="smallest scales and hmac signatures (CI smoke run)"
    )
    return parser.parse_args(argv)


def build_config(args: argparse.Namespace) -> BenchConfig:
    defaults = BenchConfig()
    if args.quick:
        defaults = BenchConfig(
            n_values=(8, 12, 16),
            fixed_n=16,
            result_sizes=(2, 4, 8),
            queries_per_point=2,
            signature_algorithm="hmac",
            key_bits=None,
        )
    return BenchConfig(
        n_values=tuple(args.n) if args.n else defaults.n_values,
        fixed_n=args.fixed_n or defaults.fixed_n,
        result_sizes=tuple(args.result_sizes) if args.result_sizes else defaults.result_sizes,
        dimension=defaults.dimension,
        seed=args.seed,
        queries_per_point=args.queries or defaults.queries_per_point,
        signature_algorithm=args.algorithm or defaults.signature_algorithm,
        key_bits=args.key_bits if args.key_bits is not None else defaults.key_bits,
    )


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    config = build_config(args)
    started = time.perf_counter()
    results = all_experiments(config)
    elapsed = time.perf_counter() - started
    print(render_results(results))
    print(f"\ncompleted {len(results)} experiments in {elapsed:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
