"""Run every figure experiment and print the tables.

Usage::

    python -m repro.bench                 # default (laptop-friendly) scales
    python -m repro.bench --n 20 40 60    # custom database-size sweep
    python -m repro.bench --quick         # smallest scales, hmac signatures
    python -m repro.bench --smoke         # fast-path regression gate only
    python -m repro.bench --fastpath      # full fast-path benchmark (n = 200)
    python -m repro.bench --construction  # shared-structure hashing benchmark
                                          # (sweeps n, writes BENCH_construction.json)
    python -m repro.bench --scale         # thousand-record construction benchmark
                                          # (sweeps n, writes BENCH_scale.json)
    python -m repro.bench --scale --smoke # reduced-n scale gate (CI)
    python -m repro.bench --coldstart     # build-vs-artifact-load benchmark
                                          # (sweeps n, writes BENCH_coldstart.json)
    python -m repro.bench --coldstart --smoke  # reduced-n cold-start gate (CI)
    python -m repro.bench --update        # single-record update vs full rebuild
                                          # (n = 1000, writes BENCH_update.json)
    python -m repro.bench --update --smoke     # reduced-n update gate (CI)
    python -m repro.bench --faults        # byzantine replica-pool gate
                                          # (writes BENCH_faults.json)
    python -m repro.bench --faults --smoke     # reduced fault-injection gate (CI)
    python -m repro.bench --churn         # crash-recovery + rolling-swap gate
                                          # (writes BENCH_churn.json)
    python -m repro.bench --churn --smoke      # reduced churn/recovery gate (CI)
    python -m repro.bench --serve         # multi-worker serving-tier gate
                                          # (writes BENCH_serve.json)
    python -m repro.bench --serve --smoke      # reduced serving gate (CI)
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.churn import (
    CHURN_REPORT_FILENAME,
    SMOKE_CHURN_REPORT_FILENAME,
    run_churn,
    run_churn_smoke,
)
from repro.bench.coldstart import (
    COLDSTART_REPORT_FILENAME,
    SMOKE_COLDSTART_REPORT_FILENAME,
    run_coldstart,
    run_coldstart_smoke,
)
from repro.bench.faults import (
    FAULTS_REPORT_FILENAME,
    SMOKE_FAULTS_REPORT_FILENAME,
    run_faults,
    run_faults_smoke,
)
from repro.bench.fastpath import (
    CONSTRUCTION_REPORT_FILENAME,
    fastpath_experiments,
    run_construction,
    run_smoke,
)
from repro.bench.figures import all_experiments
from repro.bench.harness import BenchConfig
from repro.bench.reporting import render_results
from repro.bench.serve import (
    SERVE_REPORT_FILENAME,
    SMOKE_SERVE_REPORT_FILENAME,
    run_serve,
    run_serve_smoke,
)
from repro.bench.scale import (
    SCALE_REPORT_FILENAME,
    SMOKE_SCALE_REPORT_FILENAME,
    run_scale,
    run_scale_smoke,
)
from repro.bench.update import (
    SMOKE_UPDATE_REPORT_FILENAME,
    UPDATE_REPORT_FILENAME,
    run_update,
    run_update_smoke,
)


def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce every figure of the paper's evaluation as a table.",
    )
    parser.add_argument("--n", type=int, nargs="+", default=None, help="database-size sweep")
    parser.add_argument("--fixed-n", type=int, default=None, help="database size for |q| sweeps")
    parser.add_argument(
        "--result-sizes", type=int, nargs="+", default=None, help="result-length sweep"
    )
    parser.add_argument("--queries", type=int, default=None, help="queries per data point")
    parser.add_argument(
        "--algorithm", choices=("rsa", "dsa", "hmac"), default=None, help="signature algorithm"
    )
    parser.add_argument("--key-bits", type=int, default=None, help="signature key size")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--quick", action="store_true", help="smallest scales and hmac signatures (CI smoke run)"
    )
    parser.add_argument(
        "--build-mode",
        choices=("auto", "bulk", "incremental", "balanced-incremental"),
        default=None,
        help="IFMH I-tree builder for the figures (default: incremental, the "
        "paper's exact insertion-order tree shape; auto/bulk = the vectorized "
        "balanced build for d = 1)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run only the fast-path benchmarks at reduced scale; exit 1 on regression",
    )
    parser.add_argument(
        "--fastpath",
        action="store_true",
        help="run only the fast-path benchmarks at full scale (n = 200 build comparison)",
    )
    parser.add_argument(
        "--construction",
        action="store_true",
        help="run the shared-structure construction benchmark (IFMH hashing with the "
        f"Merkle engine on vs off, n sweep up to 200) and write {CONSTRUCTION_REPORT_FILENAME}; "
        "exit 1 if the physical-hash reduction misses its floor",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help="run the thousand-record construction benchmark (level-order batched "
        f"engine vs node-at-a-time, n sweep up to 2000) and write {SCALE_REPORT_FILENAME}; "
        "exit 1 if the wall-clock speedup misses its floor; combine with --smoke for "
        f"the reduced-n CI gate (writes {SMOKE_SCALE_REPORT_FILENAME})",
    )
    parser.add_argument(
        "--coldstart",
        action="store_true",
        help="run the cold-start benchmark (owner-side rebuild vs Server.from_artifact "
        f"load, n sweep up to 1000) and write {COLDSTART_REPORT_FILENAME}; exit 1 if "
        "loading is not >= 10x faster than rebuilding at the largest n; combine with "
        f"--smoke for the reduced-n CI gate (writes {SMOKE_COLDSTART_REPORT_FILENAME})",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="run the incremental-update benchmark (single-record insert/delete vs "
        f"full rebuild at n = 1000) and write {UPDATE_REPORT_FILENAME}; exit 1 if "
        "either update is not >= 10x faster than rebuilding; combine with --smoke "
        f"for the reduced-n CI gate (writes {SMOKE_UPDATE_REPORT_FILENAME})",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="run the byzantine fault-injection benchmark (replica pool with "
        "tampering, crashing, stale-epoch and lagging replicas behind the "
        f"resilient client) and write {FAULTS_REPORT_FILENAME}; exit 1 if any "
        "tampered answer is accepted, an accepted answer is unverified, goodput "
        "misses its floor or a same-seed replay diverges; combine with --smoke "
        f"for the reduced CI gate (writes {SMOKE_FAULTS_REPORT_FILENAME})",
    )
    parser.add_argument(
        "--churn",
        action="store_true",
        help="run the churn/recovery benchmark (crash the update pipeline at "
        "every journal/apply/publish step and prove recovery bit-identical, "
        "then serve a 95/5 read/update workload through rolling epoch "
        f"hot-swaps with a stale laggard) and write {CHURN_REPORT_FILENAME}; "
        "exit 1 if recovery diverges, a stale answer is accepted post-swap, "
        "an in-flight query is dropped, the resynced replica never serves "
        "again, goodput misses its floor or a same-seed replay diverges; "
        f"combine with --smoke for the reduced CI gate (writes {SMOKE_CHURN_REPORT_FILENAME})",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="run the serving-tier benchmark (multi-worker front-end under an "
        "open-loop seeded-Poisson load with a mid-run epoch hot-swap and a "
        f"deterministic worker crash) and write {SERVE_REPORT_FILENAME}; exit 1 "
        "if the workload is not seed-deterministic, N workers miss the "
        "hardware-scaled throughput floor over one worker, p99 latency "
        "exceeds its bound, any query drops, any sampled answer fails "
        "client verification, or the crashed worker never serves again; "
        f"combine with --smoke for the reduced CI gate (writes {SMOKE_SERVE_REPORT_FILENAME})",
    )
    return parser.parse_args(argv)


def build_config(args: argparse.Namespace) -> BenchConfig:
    defaults = BenchConfig()
    if args.quick:
        defaults = BenchConfig(
            n_values=(8, 12, 16),
            fixed_n=16,
            result_sizes=(2, 4, 8),
            queries_per_point=2,
            signature_algorithm="hmac",
            key_bits=None,
        )
    return BenchConfig(
        n_values=tuple(args.n) if args.n else defaults.n_values,
        fixed_n=args.fixed_n or defaults.fixed_n,
        result_sizes=tuple(args.result_sizes) if args.result_sizes else defaults.result_sizes,
        dimension=defaults.dimension,
        seed=args.seed,
        queries_per_point=args.queries or defaults.queries_per_point,
        signature_algorithm=args.algorithm or defaults.signature_algorithm,
        key_bits=args.key_bits if args.key_bits is not None else defaults.key_bits,
        build_mode=args.build_mode or defaults.build_mode,
    )


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    exclusive = [
        flag
        for flag, given in (
            ("--smoke", args.smoke),
            ("--fastpath", args.fastpath),
            ("--construction", args.construction),
            ("--scale", args.scale),
            ("--coldstart", args.coldstart),
            ("--update", args.update),
            ("--faults", args.faults),
            ("--churn", args.churn),
            ("--serve", args.serve),
        )
        if given
    ]
    if len(exclusive) > 1 and exclusive not in (
        ["--smoke", "--scale"],
        ["--smoke", "--coldstart"],
        ["--smoke", "--update"],
        ["--smoke", "--faults"],
        ["--smoke", "--churn"],
        ["--smoke", "--serve"],
    ):
        # --smoke combines only with the named gates (--scale ... --serve).
        print(f"error: {' and '.join(exclusive)} are mutually exclusive")
        return 2
    if (
        args.smoke
        or args.fastpath
        or args.construction
        or args.scale
        or args.coldstart
        or args.update
        or args.faults
        or args.churn
        or args.serve
    ):
        ignored = [
            flag
            for flag, given in (
                ("--n", args.n is not None),
                ("--fixed-n", args.fixed_n is not None),
                ("--result-sizes", args.result_sizes is not None),
                ("--queries", args.queries is not None),
                ("--algorithm", args.algorithm is not None),
                ("--key-bits", args.key_bits is not None),
                ("--quick", args.quick),
                ("--build-mode", args.build_mode is not None),
            )
            if given
        ]
        if ignored:
            mode = exclusive[0]
            print(f"error: {mode} runs a fixed workload; {', '.join(ignored)} would be ignored")
            return 2
    started = time.perf_counter()
    if args.serve:
        if args.smoke:
            results, failures = run_serve_smoke(seed=args.seed)
            report = SMOKE_SERVE_REPORT_FILENAME
        else:
            results, failures = run_serve(seed=args.seed)
            report = SERVE_REPORT_FILENAME
        print(render_results(results))
        elapsed = time.perf_counter() - started
        for failure in failures:
            print(f"SERVE REGRESSION: {failure}")
        print(f"wrote serving-tier outcome to {report}")
        print(f"\ncompleted serving benchmark in {elapsed:.1f}s")
        return 1 if failures else 0
    if args.churn:
        if args.smoke:
            results, failures = run_churn_smoke(seed=args.seed)
            report = SMOKE_CHURN_REPORT_FILENAME
        else:
            results, failures = run_churn(seed=args.seed)
            report = CHURN_REPORT_FILENAME
        print(render_results(results))
        elapsed = time.perf_counter() - started
        for failure in failures:
            print(f"CHURN REGRESSION: {failure}")
        print(f"wrote churn/recovery outcome to {report}")
        print(f"\ncompleted churn benchmark in {elapsed:.1f}s")
        return 1 if failures else 0
    if args.faults:
        if args.smoke:
            results, failures = run_faults_smoke(seed=args.seed)
            report = SMOKE_FAULTS_REPORT_FILENAME
        else:
            results, failures = run_faults(seed=args.seed)
            report = FAULTS_REPORT_FILENAME
        print(render_results(results))
        elapsed = time.perf_counter() - started
        for failure in failures:
            print(f"FAULTS REGRESSION: {failure}")
        print(f"wrote fault-injection outcome to {report}")
        print(f"\ncompleted fault-injection benchmark in {elapsed:.1f}s")
        return 1 if failures else 0
    if args.update:
        if args.smoke:
            results, failures = run_update_smoke(seed=args.seed)
            report = SMOKE_UPDATE_REPORT_FILENAME
        else:
            results, failures = run_update(seed=args.seed)
            report = UPDATE_REPORT_FILENAME
        print(render_results(results))
        elapsed = time.perf_counter() - started
        for failure in failures:
            print(f"UPDATE REGRESSION: {failure}")
        print(f"wrote update trajectory to {report}")
        print(f"\ncompleted update benchmark in {elapsed:.1f}s")
        return 1 if failures else 0
    if args.coldstart:
        if args.smoke:
            results, failures = run_coldstart_smoke(seed=args.seed)
            report = SMOKE_COLDSTART_REPORT_FILENAME
        else:
            results, failures = run_coldstart(seed=args.seed)
            report = COLDSTART_REPORT_FILENAME
        print(render_results(results))
        elapsed = time.perf_counter() - started
        for failure in failures:
            print(f"COLDSTART REGRESSION: {failure}")
        print(f"wrote cold-start trajectory to {report}")
        print(f"\ncompleted cold-start benchmark in {elapsed:.1f}s")
        return 1 if failures else 0
    if args.scale:
        if args.smoke:
            results, failures = run_scale_smoke(seed=args.seed)
            report = SMOKE_SCALE_REPORT_FILENAME
        else:
            results, failures = run_scale(seed=args.seed)
            report = SCALE_REPORT_FILENAME
        print(render_results(results))
        elapsed = time.perf_counter() - started
        for failure in failures:
            print(f"SCALE REGRESSION: {failure}")
        print(f"wrote scale trajectory to {report}")
        print(f"\ncompleted scale benchmark in {elapsed:.1f}s")
        return 1 if failures else 0
    if args.smoke:
        results, failures = run_smoke(seed=args.seed)
        print(render_results(results))
        elapsed = time.perf_counter() - started
        for failure in failures:
            print(f"FAST-PATH REGRESSION: {failure}")
        print(f"\ncompleted smoke run in {elapsed:.1f}s")
        return 1 if failures else 0
    if args.fastpath:
        results = fastpath_experiments(seed=args.seed)
        print(render_results(results))
        print(f"\ncompleted {len(results)} experiments in {time.perf_counter() - started:.1f}s")
        return 0
    if args.construction:
        results, failures = run_construction(seed=args.seed)
        print(render_results(results))
        elapsed = time.perf_counter() - started
        for failure in failures:
            print(f"CONSTRUCTION REGRESSION: {failure}")
        print(f"wrote hashing trajectory to {CONSTRUCTION_REPORT_FILENAME}")
        print(f"\ncompleted construction benchmark in {elapsed:.1f}s")
        return 1 if failures else 0
    config = build_config(args)
    results = all_experiments(config)
    elapsed = time.perf_counter() - started
    print(render_results(results))
    print(f"\ncompleted {len(results)} experiments in {elapsed:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
