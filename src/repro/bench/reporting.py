"""Plain-text rendering of experiment tables.

The paper reports its evaluation as figures; this reproduction reports the
same quantities as tables (one row per x-axis point and approach).  The
formatting here is intentionally dependency-free so the benchmark output is
readable in CI logs and can be pasted into ``EXPERIMENTS.md`` verbatim.
"""

from __future__ import annotations

from typing import Iterable

from repro.bench.harness import ExperimentResult

__all__ = ["format_value", "format_table", "render_results"]


def format_value(value: object) -> str:
    """Human-friendly scalar formatting (times in ms where sensible)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value * 1000:.3f}e-3"
        return f"{value:.4g}"
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render one experiment as a fixed-width text table."""
    columns = list(result.columns)
    widths = {column: len(column) for column in columns}
    rendered_rows = []
    for row in result.rows:
        rendered = {column: format_value(row.get(column, "")) for column in columns}
        rendered_rows.append(rendered)
        for column in columns:
            widths[column] = max(widths[column], len(rendered[column]))

    def line(values: dict[str, str]) -> str:
        return "  ".join(values[column].rjust(widths[column]) for column in columns)

    header = line({column: column for column in columns})
    separator = "  ".join("-" * widths[column] for column in columns)
    body = "\n".join(line(row) for row in rendered_rows)
    parameters = ", ".join(f"{key}={value}" for key, value in result.parameters.items())
    title = f"{result.experiment_id}: {result.title}"
    if parameters:
        title += f"  [{parameters}]"
    return "\n".join([title, header, separator, body]) if body else "\n".join([title, header, separator])


def render_results(results: Iterable[ExperimentResult]) -> str:
    """Render a sequence of experiments separated by blank lines."""
    return "\n\n".join(format_table(result) for result in results)
