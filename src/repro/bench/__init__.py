"""Benchmark harness: one experiment per figure of the paper's evaluation.

:mod:`repro.bench.figures` defines the experiments (Fig. 5a-5c data-owner
overhead, Fig. 6a-6d server overhead, Fig. 7a-7d user overhead, Fig. 8a-8b
communication overhead, plus ablations); :mod:`repro.bench.harness` provides
the shared machinery (building the three ADSs for a scale, running query
workloads against them, collecting counters and timings) and
:mod:`repro.bench.reporting` renders the resulting tables.

Run every experiment and print the tables with::

    python -m repro.bench

:mod:`repro.bench.fastpath` benchmarks the vectorized hot paths (bulk I-tree
construction, batched query execution); run it with ``python -m repro.bench
--fastpath`` or as the CI regression gate ``python -m repro.bench --smoke``.

The pytest-benchmark targets under ``benchmarks/`` wrap the same experiment
functions.
"""

from repro.bench.harness import BenchConfig, SystemsUnderTest, build_systems, ExperimentResult
from repro.bench.reporting import format_table, render_results
from repro.bench import fastpath, figures

__all__ = [
    "BenchConfig",
    "SystemsUnderTest",
    "build_systems",
    "ExperimentResult",
    "format_table",
    "render_results",
    "fastpath",
    "figures",
]
