"""Fast-path benchmarks: bulk I-tree construction and batched queries.

Two experiments quantify the vectorized hot paths added on top of the paper
reproduction:

* :func:`build_comparison` -- incremental BFS insertion vs the vectorized
  balanced bulk build of the univariate I-tree, at a given database size.
  The two builders must carve the identical subdomain partition; the
  interesting number is the construction-time speedup.

* :func:`batch_comparison` -- per-query ``Server.execute`` vs
  ``Server.execute_batch`` on a workload where several queries share a
  weight vector (the common "one user, several analytics" shape).  Both
  paths must return identical records; the interesting number is the
  queries-per-second ratio.

``python -m repro.bench --smoke`` runs both at reduced scale and exits
non-zero when either fast path regresses below a conservative floor, so CI
catches performance regressions without a full figure run.
"""

from __future__ import annotations

import random
import time
from typing import List

from repro.bench.harness import ExperimentResult
from repro.core.owner import DataOwner
from repro.core.queries import AnalyticQuery, KNNQuery, RangeQuery, TopKQuery
from repro.core.server import Server
from repro.itree.itree import ITree
from repro.workloads.generator import (
    WorkloadConfig,
    make_dataset,
    make_template,
    make_weight_vector,
)

__all__ = [
    "build_comparison",
    "batch_comparison",
    "fastpath_experiments",
    "run_smoke",
    "SMOKE_BUILD_SPEEDUP_FLOOR",
    "SMOKE_BATCH_SPEEDUP_FLOOR",
]

#: Conservative floors used by the ``--smoke`` regression gate (the full
#: n = 200 benchmark targets >= 5x build and > 1x batch speedups).
SMOKE_BUILD_SPEEDUP_FLOOR = 2.0
SMOKE_BATCH_SPEEDUP_FLOOR = 1.05


def build_comparison(n_records: int = 200, seed: int = 0) -> ExperimentResult:
    """Incremental vs bulk I-tree construction time at one database size."""
    workload = WorkloadConfig(n_records=n_records, dimension=1, seed=seed)
    dataset = make_dataset(workload)
    template = make_template(workload)
    functions = template.functions_for(dataset)
    result = ExperimentResult(
        experiment_id="fastpath-build",
        title="I-tree construction: incremental insertion vs vectorized bulk build",
        parameters={"n": n_records, "seed": seed},
        columns=("builder", "build_seconds", "subdomains", "height", "speedup"),
    )
    timings = {}
    partitions = {}
    for builder in ("incremental", "bulk"):
        started = time.perf_counter()
        tree = ITree(functions, template.domain, builder=builder)
        timings[builder] = time.perf_counter() - started
        partitions[builder] = sorted(
            (leaf.region.interval_low, leaf.region.interval_high) for leaf in tree.leaves()
        )
        result.add_row(
            builder=builder,
            build_seconds=timings[builder],
            subdomains=tree.subdomain_count,
            height=tree.height(),
            speedup=1.0 if builder == "incremental" else timings["incremental"] / timings[builder],
        )
    if partitions["incremental"] != partitions["bulk"]:  # pragma: no cover - correctness guard
        raise AssertionError("bulk build carved a different partition than the incremental build")
    return result


def _session_queries(
    template, unique_weights: int, queries_per_weight: int, seed: int
) -> List[AnalyticQuery]:
    """A batch where each weight vector is shared by several query kinds."""
    rng = random.Random(seed)
    queries: List[AnalyticQuery] = []
    for _ in range(unique_weights):
        weights = make_weight_vector(template, rng)
        for position in range(queries_per_weight):
            kind = position % 3
            if kind == 0:
                queries.append(TopKQuery(weights=weights, k=3))
            elif kind == 1:
                queries.append(RangeQuery(weights=weights, low=2.0, high=7.0))
            else:
                queries.append(KNNQuery(weights=weights, k=3, target=rng.uniform(2.0, 8.0)))
    return queries


def batch_comparison(
    n_records: int = 80,
    unique_weights: int = 12,
    queries_per_weight: int = 9,
    seed: int = 0,
    repeats: int = 3,
) -> ExperimentResult:
    """Per-query execution vs ``execute_batch`` throughput on shared weights.

    Each mode runs ``repeats`` times against a fresh server and reports its
    best wall-clock time, so a single scheduler hiccup on a loaded machine
    cannot flip the comparison.
    """
    workload = WorkloadConfig(n_records=n_records, dimension=1, seed=seed)
    dataset = make_dataset(workload)
    template = make_template(workload)
    owner = DataOwner(
        dataset, template, scheme="one-signature", signature_algorithm="hmac",
        rng=random.Random(seed),
    )
    queries = _session_queries(template, unique_weights, queries_per_weight, seed + 1)

    def best_of(run):
        best_seconds, executions = float("inf"), None
        for _ in range(repeats):
            server = Server(owner.outsource())
            started = time.perf_counter()
            executions = run(server)
            best_seconds = min(best_seconds, time.perf_counter() - started)
        return best_seconds, executions

    single_seconds, single = best_of(lambda server: [server.execute(q) for q in queries])
    batch_seconds, batched = best_of(lambda server: server.execute_batch(queries))

    for alone, together in zip(single, batched):  # pragma: no branch - correctness guard
        if alone.result.records != together.result.records:  # pragma: no cover
            raise AssertionError("execute_batch returned different records than execute")

    result = ExperimentResult(
        experiment_id="fastpath-batch",
        title="Server throughput: per-query execute vs execute_batch",
        parameters={
            "n": n_records,
            "queries": len(queries),
            "unique_weights": unique_weights,
        },
        columns=("mode", "seconds", "queries_per_second", "speedup"),
    )
    result.add_row(
        mode="execute",
        seconds=single_seconds,
        queries_per_second=len(queries) / single_seconds,
        speedup=1.0,
    )
    result.add_row(
        mode="execute_batch",
        seconds=batch_seconds,
        queries_per_second=len(queries) / batch_seconds,
        speedup=single_seconds / batch_seconds,
    )
    return result


def fastpath_experiments(
    build_n: int = 200,
    batch_n: int = 80,
    seed: int = 0,
) -> List[ExperimentResult]:
    """Both fast-path experiments at the requested scales."""
    return [
        build_comparison(n_records=build_n, seed=seed),
        batch_comparison(n_records=batch_n, seed=seed),
    ]


def run_smoke(build_n: int = 120, batch_n: int = 60, seed: int = 0) -> tuple[List[ExperimentResult], List[str]]:
    """Reduced-scale fast-path run returning (results, regression messages).

    An empty message list means both fast paths cleared their floors.
    """
    results = fastpath_experiments(build_n=build_n, batch_n=batch_n, seed=seed)
    failures: List[str] = []
    build, batch = results
    build_speedup = build.rows[-1]["speedup"]
    if build_speedup < SMOKE_BUILD_SPEEDUP_FLOOR:
        failures.append(
            f"bulk build speedup {build_speedup:.2f}x below floor "
            f"{SMOKE_BUILD_SPEEDUP_FLOOR:.2f}x at n={build_n}"
        )
    batch_speedup = batch.rows[-1]["speedup"]
    if batch_speedup < SMOKE_BATCH_SPEEDUP_FLOOR:
        failures.append(
            f"execute_batch speedup {batch_speedup:.2f}x below floor "
            f"{SMOKE_BATCH_SPEEDUP_FLOOR:.2f}x at n={batch_n}"
        )
    return results, failures
