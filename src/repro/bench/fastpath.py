"""Fast-path benchmarks: bulk I-tree construction, batched queries, hashing.

Three experiments quantify the vectorized/shared hot paths added on top of
the paper reproduction:

* :func:`build_comparison` -- incremental BFS insertion vs the vectorized
  balanced bulk build of the univariate I-tree, at a given database size.
  The two builders must carve the identical subdomain partition; the
  interesting number is the construction-time speedup.

* :func:`batch_comparison` -- per-query ``Server.execute`` vs
  ``Server.execute_batch`` on a workload where several queries share a
  weight vector (the common "one user, several analytics" shape).  Both
  paths must return identical records; the interesting number is the
  queries-per-second ratio.

* :func:`construction_comparison` -- the full IFMH (step 2/3) construction
  with the shared-structure Merkle engine on vs off.  Root hashes must be
  bit-identical and the *logical* hash counts equal; the interesting number
  is the reduction in *physical* SHA-256 invocations.
  ``python -m repro.bench --construction`` sweeps several database sizes
  and records the hashing trajectory to ``BENCH_construction.json``.

``python -m repro.bench --smoke`` runs all of them at reduced scale and
exits non-zero when any fast path regresses below a conservative floor, so
CI catches performance regressions without a full figure run.
"""

from __future__ import annotations

import gc
import json
import random
import time
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import ExperimentResult
from repro.core.owner import DataOwner
from repro.core.queries import AnalyticQuery, KNNQuery, RangeQuery, TopKQuery
from repro.core.server import Server
from repro.ifmh.ifmh_tree import IFMHTree
from repro.itree.itree import ITree
from repro.metrics.counters import Counters
from repro.workloads.generator import (
    WorkloadConfig,
    make_dataset,
    make_template,
    make_weight_vector,
)

__all__ = [
    "best_ifmh_build",
    "build_comparison",
    "batch_comparison",
    "construction_comparison",
    "run_construction",
    "fastpath_experiments",
    "run_smoke",
    "SMOKE_BUILD_SPEEDUP_FLOOR",
    "SMOKE_BATCH_SPEEDUP_FLOOR",
    "SMOKE_CONSTRUCTION_REDUCTION_FLOOR",
    "CONSTRUCTION_REDUCTION_FLOOR",
    "CONSTRUCTION_REPORT_FILENAME",
]

#: Conservative floors used by the ``--smoke`` regression gate (the full
#: n = 200 benchmark targets >= 5x build and > 1x batch speedups).
SMOKE_BUILD_SPEEDUP_FLOOR = 2.0
SMOKE_BATCH_SPEEDUP_FLOOR = 1.05
#: Physical-hash reduction the shared-structure engine must clear in the
#: smoke run (n = 60; the full ``--construction`` gate demands >= 5x at
#: n = 200, where sharing is far more effective).
SMOKE_CONSTRUCTION_REDUCTION_FLOOR = 4.0
#: Acceptance floor for the full construction benchmark at its largest n.
CONSTRUCTION_REDUCTION_FLOOR = 5.0
#: Where ``python -m repro.bench --construction`` records its trajectory.
CONSTRUCTION_REPORT_FILENAME = "BENCH_construction.json"


def best_ifmh_build(dataset, template, repeats: int = 3, **kwargs):
    """Best wall-clock of ``repeats`` IFMH builds (gc forced before each).

    The shared timing discipline of every construction gate (``--smoke``,
    ``--construction``, ``--scale``): a scheduler hiccup or GC pause on a
    loaded machine cannot flip a comparison.  Returns ``(best_seconds,
    tree, counters)`` from the last run -- the builds are deterministic,
    so every run produces identical hashes and counters.
    """
    best_seconds = float("inf")
    tree = None
    counters = Counters()
    for _ in range(repeats):
        tree = None  # release the previous ADS before timing the next build
        counters = Counters()
        gc.collect()
        started = time.perf_counter()
        tree = IFMHTree(dataset, template, counters=counters, **kwargs)
        best_seconds = min(best_seconds, time.perf_counter() - started)
    return best_seconds, tree, counters


def build_comparison(n_records: int = 200, seed: int = 0, repeats: int = 3) -> ExperimentResult:
    """Incremental vs bulk I-tree construction time at one database size.

    Each builder runs ``repeats`` times and reports its best wall-clock
    time (garbage collection forced beforehand), so a scheduler hiccup or
    GC pause on a loaded machine cannot flip the comparison.
    """
    workload = WorkloadConfig(n_records=n_records, dimension=1, seed=seed)
    dataset = make_dataset(workload)
    template = make_template(workload)
    functions = template.functions_for(dataset)
    result = ExperimentResult(
        experiment_id="fastpath-build",
        title="I-tree construction: incremental insertion vs vectorized bulk build",
        parameters={"n": n_records, "seed": seed},
        columns=("builder", "build_seconds", "subdomains", "height", "speedup"),
    )
    timings = {}
    partitions = {}
    for builder in ("incremental", "bulk"):
        best_seconds, tree = float("inf"), None
        for _ in range(repeats):
            gc.collect()
            started = time.perf_counter()
            tree = ITree(functions, template.domain, builder=builder)
            best_seconds = min(best_seconds, time.perf_counter() - started)
        timings[builder] = best_seconds
        partitions[builder] = sorted(
            (leaf.region.interval_low, leaf.region.interval_high) for leaf in tree.leaves()
        )
        result.add_row(
            builder=builder,
            build_seconds=timings[builder],
            subdomains=tree.subdomain_count,
            height=tree.height(),
            speedup=1.0 if builder == "incremental" else timings["incremental"] / timings[builder],
        )
    if partitions["incremental"] != partitions["bulk"]:  # pragma: no cover - correctness guard
        raise AssertionError("bulk build carved a different partition than the incremental build")
    return result


def _session_queries(
    template, unique_weights: int, queries_per_weight: int, seed: int
) -> List[AnalyticQuery]:
    """A batch where each weight vector is shared by several query kinds."""
    rng = random.Random(seed)
    queries: List[AnalyticQuery] = []
    for _ in range(unique_weights):
        weights = make_weight_vector(template, rng)
        for position in range(queries_per_weight):
            kind = position % 3
            if kind == 0:
                queries.append(TopKQuery(weights=weights, k=3))
            elif kind == 1:
                queries.append(RangeQuery(weights=weights, low=2.0, high=7.0))
            else:
                queries.append(KNNQuery(weights=weights, k=3, target=rng.uniform(2.0, 8.0)))
    return queries


def batch_comparison(
    n_records: int = 80,
    unique_weights: int = 12,
    queries_per_weight: int = 9,
    seed: int = 0,
    repeats: int = 3,
) -> ExperimentResult:
    """Per-query execution vs ``execute_batch`` throughput on shared weights.

    Each mode runs ``repeats`` times against a fresh server and reports its
    best wall-clock time, so a single scheduler hiccup on a loaded machine
    cannot flip the comparison.
    """
    workload = WorkloadConfig(n_records=n_records, dimension=1, seed=seed)
    dataset = make_dataset(workload)
    template = make_template(workload)
    owner = DataOwner(
        dataset, template, scheme="one-signature", signature_algorithm="hmac",
        rng=random.Random(seed),
    )
    queries = _session_queries(template, unique_weights, queries_per_weight, seed + 1)

    def best_of(run):
        best_seconds, executions = float("inf"), None
        for _ in range(repeats):
            server = Server(owner.outsource())
            gc.collect()
            started = time.perf_counter()
            executions = run(server)
            best_seconds = min(best_seconds, time.perf_counter() - started)
        return best_seconds, executions

    single_seconds, single = best_of(lambda server: [server.execute(q) for q in queries])
    batch_seconds, batched = best_of(lambda server: server.execute_batch(queries))

    for alone, together in zip(single, batched):  # pragma: no branch - correctness guard
        if alone.result.records != together.result.records:  # pragma: no cover
            raise AssertionError("execute_batch returned different records than execute")

    result = ExperimentResult(
        experiment_id="fastpath-batch",
        title="Server throughput: per-query execute vs execute_batch",
        parameters={
            "n": n_records,
            "queries": len(queries),
            "unique_weights": unique_weights,
        },
        columns=("mode", "seconds", "queries_per_second", "speedup"),
    )
    result.add_row(
        mode="execute",
        seconds=single_seconds,
        queries_per_second=len(queries) / single_seconds,
        speedup=1.0,
    )
    result.add_row(
        mode="execute_batch",
        seconds=batch_seconds,
        queries_per_second=len(queries) / batch_seconds,
        speedup=single_seconds / batch_seconds,
    )
    return result


def construction_comparison(
    n_records: int = 200, seed: int = 0, repeats: int = 3
) -> ExperimentResult:
    """IFMH construction with the shared-structure Merkle engine on vs off.

    Both builds must produce the bit-identical root hash and the same
    *logical* hash count (what Fig. 5a/7a report); the engine only changes
    which of those hashes physically run.  The headline number is
    ``physical_reduction``: naive physical SHA-256 invocations divided by
    the engine's.  ``build_seconds`` is the best of ``repeats`` runs with
    ``gc.collect()`` forced before each, the same timing discipline as the
    other wall-clock gates.
    """
    workload = WorkloadConfig(n_records=n_records, dimension=1, seed=seed)
    dataset = make_dataset(workload)
    template = make_template(workload)
    result = ExperimentResult(
        experiment_id="fastpath-construction",
        title="IFMH construction: naive hashing vs shared-structure Merkle engine",
        parameters={"n": n_records, "seed": seed},
        columns=(
            "hash_consing",
            "build_seconds",
            "logical_hashes",
            "physical_hashes",
            "physical_reduction",
            "subdomains",
        ),
    )
    observed: Dict[bool, Dict[str, object]] = {}
    for hash_consing in (False, True):
        build_seconds, tree, counters = best_ifmh_build(
            dataset, template, repeats, hash_consing=hash_consing
        )
        observed[hash_consing] = {
            "root": tree.root_hash,
            "logical": counters.hash_operations,
            "physical": counters.physical_hash_operations,
            "engine_stats": tree.merkle_engine_stats,
        }
        result.add_row(
            hash_consing=hash_consing,
            build_seconds=build_seconds,
            logical_hashes=counters.hash_operations,
            physical_hashes=counters.physical_hash_operations,
            physical_reduction=(
                1.0
                if not hash_consing
                else observed[False]["physical"] / counters.physical_hash_operations
            ),
            subdomains=tree.subdomain_count,
        )
    if observed[False]["root"] != observed[True]["root"]:  # pragma: no cover - correctness guard
        raise AssertionError("shared-structure engine changed the IFMH root hash")
    if observed[False]["logical"] != observed[True]["logical"]:  # pragma: no cover
        raise AssertionError("shared-structure engine changed the logical hash count")
    result.parameters["engine_stats"] = observed[True]["engine_stats"]
    return result


def run_construction(
    n_values: Sequence[int] = (50, 100, 200),
    seed: int = 0,
    output_path: Optional[str] = CONSTRUCTION_REPORT_FILENAME,
) -> tuple[List[ExperimentResult], List[str]]:
    """Sweep the construction comparison and record the hashing trajectory.

    Returns ``(results, failures)``; an empty failure list means the largest
    scale cleared :data:`CONSTRUCTION_REDUCTION_FLOOR`.  When
    ``output_path`` is set, the trajectory (per-n logical/physical counts
    and timings for both variants, plus engine statistics) is written there
    as JSON.
    """
    results = [construction_comparison(n_records=n, seed=seed) for n in n_values]
    trajectory = []
    for n_records, result in zip(n_values, results):
        rows = {row["hash_consing"]: row for row in result.rows}
        trajectory.append(
            {
                "n": n_records,
                "subdomains": rows[True]["subdomains"],
                "naive": {
                    "build_seconds": rows[False]["build_seconds"],
                    "logical_hashes": rows[False]["logical_hashes"],
                    "physical_hashes": rows[False]["physical_hashes"],
                },
                "hash_consing": {
                    "build_seconds": rows[True]["build_seconds"],
                    "logical_hashes": rows[True]["logical_hashes"],
                    "physical_hashes": rows[True]["physical_hashes"],
                },
                "physical_reduction": rows[True]["physical_reduction"],
                "build_speedup": rows[False]["build_seconds"] / rows[True]["build_seconds"],
                "engine_stats": result.parameters.get("engine_stats"),
            }
        )
    headline = trajectory[-1]
    failures: List[str] = []
    if headline["physical_reduction"] < CONSTRUCTION_REDUCTION_FLOOR:
        failures.append(
            f"shared-structure engine reduced physical hashing only "
            f"{headline['physical_reduction']:.2f}x at n={headline['n']} "
            f"(floor {CONSTRUCTION_REDUCTION_FLOOR:.2f}x)"
        )
    if output_path is not None:
        payload = {
            "benchmark": "ifmh-construction-shared-structure",
            "seed": seed,
            "floor": CONSTRUCTION_REDUCTION_FLOOR,
            "headline_n": headline["n"],
            "headline_physical_reduction": headline["physical_reduction"],
            "trajectory": trajectory,
        }
        with open(output_path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
    return results, failures


def fastpath_experiments(
    build_n: int = 200,
    batch_n: int = 80,
    seed: int = 0,
) -> List[ExperimentResult]:
    """Both fast-path experiments at the requested scales."""
    return [
        build_comparison(n_records=build_n, seed=seed),
        batch_comparison(n_records=batch_n, seed=seed),
    ]


def run_smoke(
    build_n: int = 120,
    batch_n: int = 60,
    construction_n: int = 60,
    seed: int = 0,
) -> tuple[List[ExperimentResult], List[str]]:
    """Reduced-scale fast-path run returning (results, regression messages).

    An empty message list means every fast path cleared its floor.
    """
    results = fastpath_experiments(build_n=build_n, batch_n=batch_n, seed=seed)
    results.append(construction_comparison(n_records=construction_n, seed=seed))
    failures: List[str] = []
    build, batch, construction = results
    build_speedup = build.rows[-1]["speedup"]
    if build_speedup < SMOKE_BUILD_SPEEDUP_FLOOR:
        failures.append(
            f"bulk build speedup {build_speedup:.2f}x below floor "
            f"{SMOKE_BUILD_SPEEDUP_FLOOR:.2f}x at n={build_n}"
        )
    batch_speedup = batch.rows[-1]["speedup"]
    if batch_speedup < SMOKE_BATCH_SPEEDUP_FLOOR:
        failures.append(
            f"execute_batch speedup {batch_speedup:.2f}x below floor "
            f"{SMOKE_BATCH_SPEEDUP_FLOOR:.2f}x at n={batch_n}"
        )
    construction_reduction = construction.rows[-1]["physical_reduction"]
    if construction_reduction < SMOKE_CONSTRUCTION_REDUCTION_FLOOR:
        failures.append(
            f"shared-structure physical-hash reduction {construction_reduction:.2f}x "
            f"below floor {SMOKE_CONSTRUCTION_REDUCTION_FLOOR:.2f}x at n={construction_n}"
        )
    return results, failures
