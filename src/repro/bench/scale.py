"""Thousand-record-scale construction benchmark (``--scale``).

The paper's construction experiments (Fig. 5a/7a) stop at small ``n``
because the pure-Python reproduction was bottlenecked first on redundant
SHA-256 work (removed by the PR 2 shared-structure engine) and then on
per-node Python overhead (removed by the level-order batched arena build).
This benchmark sweeps the IFMH construction into the thousands and gates
the batched engine's wall-clock speedup over the node-at-a-time engine.

``python -m repro.bench --scale`` runs the full sweep (n up to 2000; the
node-at-a-time comparison is capped at n = 1000, where one naive-engine
build already takes minutes) and writes ``BENCH_scale.json``;
``python -m repro.bench --scale --smoke`` runs a reduced-n version of the
same gate for CI.  All timings are best-of-``repeats`` with a forced
``gc.collect()`` before every run, so a scheduler hiccup or GC pause on a
loaded machine cannot flip a gate.
"""

from __future__ import annotations

import gc
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.fastpath import best_ifmh_build
from repro.bench.harness import ExperimentResult
from repro.workloads.generator import WorkloadConfig, make_dataset, make_template

__all__ = [
    "SCALE_N_VALUES",
    "SCALE_COMPARE_MAX_N",
    "SCALE_SPEEDUP_FLOOR",
    "SCALE_REPEATS",
    "SCALE_REPORT_FILENAME",
    "SMOKE_SCALE_N_VALUES",
    "SMOKE_SCALE_SPEEDUP_FLOOR",
    "SMOKE_SCALE_REPORT_FILENAME",
    "scale_point",
    "run_scale",
    "run_scale_smoke",
]

#: Database sizes of the full ``--scale`` sweep.
SCALE_N_VALUES = (500, 1000, 2000)
#: Largest n at which the node-at-a-time engine is also built for the
#: speedup comparison; beyond it only the batched engine runs (a single
#: node-at-a-time build at n = 2000 takes tens of minutes).
SCALE_COMPARE_MAX_N = 1000
#: Wall-clock construction speedup the batched engine must clear at the
#: largest compared n (the acceptance gate: >= 3x at n = 1000).
SCALE_SPEEDUP_FLOOR = 3.0
#: Best-of-``SCALE_REPEATS`` timing with ``gc.collect()`` between runs.
SCALE_REPEATS = 3
#: Where ``python -m repro.bench --scale`` records its trajectory.
SCALE_REPORT_FILENAME = "BENCH_scale.json"

#: Reduced-n configuration used by ``--scale --smoke`` (CI).
SMOKE_SCALE_N_VALUES = (120, 240)
SMOKE_SCALE_SPEEDUP_FLOOR = 1.5
SMOKE_SCALE_REPORT_FILENAME = "BENCH_scale_smoke.json"


def scale_point(
    n_records: int,
    seed: int = 0,
    repeats: int = SCALE_REPEATS,
    compare: bool = True,
) -> Dict[str, object]:
    """One sweep point: batched engine, optionally vs node-at-a-time.

    When ``compare`` is set, the node-at-a-time engine (PR 2,
    ``batch_hashing=False``) is built on the same workload and the root
    hash and logical hash counter are asserted bit-identical -- the
    speedup must never come from computing something else.
    """
    workload = WorkloadConfig(n_records=n_records, dimension=1, seed=seed)
    dataset = make_dataset(workload)
    template = make_template(workload)

    batched_seconds, batched_tree, batched_counters = best_ifmh_build(
        dataset, template, repeats, hash_consing=True, batch_hashing=True
    )
    point: Dict[str, object] = {
        "n": n_records,
        "subdomains": batched_tree.subdomain_count,
        "logical_hashes": batched_counters.hash_operations,
        "batched": {
            "build_seconds": batched_seconds,
            "physical_hashes": batched_counters.physical_hash_operations,
        },
        "engine_stats": batched_tree.merkle_engine_stats,
        "node_engine": None,
        "speedup": None,
    }
    if compare:
        batched_root = batched_tree.root_hash
        del batched_tree
        node_seconds, node_tree, node_counters = best_ifmh_build(
            dataset, template, repeats, hash_consing=True, batch_hashing=False
        )
        if node_tree.root_hash != batched_root:  # pragma: no cover - correctness guard
            raise AssertionError("batched engine changed the IFMH root hash")
        if node_counters.hash_operations != batched_counters.hash_operations:
            raise AssertionError(  # pragma: no cover - correctness guard
                "batched engine changed the logical hash count"
            )
        point["node_engine"] = {
            "build_seconds": node_seconds,
            "physical_hashes": node_counters.physical_hash_operations,
        }
        point["speedup"] = node_seconds / batched_seconds
        del node_tree
    else:
        del batched_tree
    gc.collect()
    return point


def run_scale(
    n_values: Sequence[int] = SCALE_N_VALUES,
    seed: int = 0,
    repeats: int = SCALE_REPEATS,
    compare_max_n: int = SCALE_COMPARE_MAX_N,
    speedup_floor: float = SCALE_SPEEDUP_FLOOR,
    output_path: Optional[str] = SCALE_REPORT_FILENAME,
) -> Tuple[List[ExperimentResult], List[str]]:
    """Sweep the scale benchmark and gate the batched engine's speedup.

    Returns ``(results, failures)``; an empty failure list means the
    largest compared scale cleared ``speedup_floor``.  When ``output_path``
    is set the trajectory is written there as JSON.
    """
    result = ExperimentResult(
        experiment_id="scale-construction",
        title="IFMH construction at scale: node-at-a-time vs level-order batched engine",
        parameters={"seed": seed, "repeats": repeats, "floor": speedup_floor},
        columns=(
            "n",
            "engine",
            "build_seconds",
            "speedup",
            "logical_hashes",
            "physical_hashes",
            "subdomains",
        ),
    )
    trajectory: List[Dict[str, object]] = []
    for n_records in n_values:
        point = scale_point(
            n_records, seed=seed, repeats=repeats, compare=n_records <= compare_max_n
        )
        trajectory.append(point)
        node = point["node_engine"]
        if node is not None:
            result.add_row(
                n=n_records,
                engine="node-at-a-time",
                build_seconds=node["build_seconds"],
                speedup=1.0,
                logical_hashes=point["logical_hashes"],
                physical_hashes=node["physical_hashes"],
                subdomains=point["subdomains"],
            )
        batched = point["batched"]
        result.add_row(
            n=n_records,
            engine="batched",
            build_seconds=batched["build_seconds"],
            speedup=point["speedup"] if point["speedup"] is not None else float("nan"),
            logical_hashes=point["logical_hashes"],
            physical_hashes=batched["physical_hashes"],
            subdomains=point["subdomains"],
        )

    compared = [point for point in trajectory if point["speedup"] is not None]
    failures: List[str] = []
    headline: Optional[Dict[str, object]] = None
    if not compared:
        failures.append("no sweep point ran the node-at-a-time comparison; nothing to gate")
    else:
        headline = compared[-1]
        if headline["speedup"] < speedup_floor:
            failures.append(
                f"batched engine sped construction up only {headline['speedup']:.2f}x "
                f"at n={headline['n']} (floor {speedup_floor:.2f}x)"
            )
    if output_path is not None:
        payload = {
            "benchmark": "ifmh-construction-scale",
            "seed": seed,
            "repeats": repeats,
            "floor": speedup_floor,
            "headline_n": headline["n"] if headline else None,
            "headline_speedup": headline["speedup"] if headline else None,
            "trajectory": trajectory,
        }
        with open(output_path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
    return [result], failures


def run_scale_smoke(
    seed: int = 0, output_path: Optional[str] = SMOKE_SCALE_REPORT_FILENAME
) -> Tuple[List[ExperimentResult], List[str]]:
    """Reduced-n scale gate for CI (same code path, minutes -> seconds)."""
    return run_scale(
        n_values=SMOKE_SCALE_N_VALUES,
        seed=seed,
        repeats=SCALE_REPEATS,
        compare_max_n=max(SMOKE_SCALE_N_VALUES),
        speedup_floor=SMOKE_SCALE_SPEEDUP_FLOOR,
        output_path=output_path,
    )
