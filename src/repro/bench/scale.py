"""Thousand-record-scale construction benchmark (``--scale``).

The paper's construction experiments (Fig. 5a/7a) stop at small ``n``
because the pure-Python reproduction was bottlenecked first on redundant
SHA-256 work (removed by the PR 2 shared-structure engine) and then on
per-node Python overhead (removed by the level-order batched arena build).
This benchmark sweeps the IFMH construction into the thousands and gates
the batched engine's wall-clock speedup over the node-at-a-time engine.

``python -m repro.bench --scale`` runs the full sweep (n up to 2000; the
node-at-a-time comparison is capped at n = 1000, where one naive-engine
build already takes minutes) and writes ``BENCH_scale.json``;
``python -m repro.bench --scale --smoke`` runs a reduced-n version of the
same gate for CI.  All timings are best-of-``repeats`` with a forced
``gc.collect()`` before every run, so a scheduler hiccup or GC pause on a
loaded machine cannot flip a gate.

Parallel construction points
----------------------------
Two further points gate the multiprocess forest build (PR 10):

* **full-ADS parallel** -- the complete IFMH construction at n = 1000,
  serial vs ``construction_workers`` forked workers, asserted
  bit-identical (root hash, logical *and* physical hash counters, engine
  stats) before any speedup is reported.

* **forest-stage n = 10^4** -- the parallelized stage in isolation at the
  paper-scale leaf width: a synthetic forest of ``n + 2 = 10002``-leaf
  trees where consecutive trees differ by one adjacent transposition
  (exactly the IFMH step-2 shape).  The tree count is *capped* (the real
  sweep has Theta(n^2) subdomains; the cap is recorded in the report), and
  serial vs parallel builds are asserted bit-identical -- roots, every
  arena digest and both hash counters.

Both gates use an **affinity-scaled floor**: the required speedup is
``min(cap, per_worker * effective)`` where ``effective = min(workers,
len(os.sched_getaffinity(0)))``.  On a single-core runner the workers
just serialize (and duplicate shard-boundary hashing), so no genuine
speedup is possible; the floor degrades to a containment bound that only
fails if the parallel path collapses (hangs, thrashes) rather than
demanding parallelism the hardware cannot deliver.
"""

from __future__ import annotations

import gc
import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.fastpath import best_ifmh_build
from repro.bench.harness import ExperimentResult
from repro.core.parallel import available_cores
from repro.crypto.hashing import HashFunction
from repro.merkle import arena as arena_module
from repro.merkle.arena import ForestHasher
from repro.workloads.generator import WorkloadConfig, make_dataset, make_template

__all__ = [
    "SCALE_N_VALUES",
    "SCALE_COMPARE_MAX_N",
    "SCALE_SPEEDUP_FLOOR",
    "SCALE_REPEATS",
    "SCALE_REPORT_FILENAME",
    "SMOKE_SCALE_N_VALUES",
    "SMOKE_SCALE_SPEEDUP_FLOOR",
    "SMOKE_SCALE_REPORT_FILENAME",
    "PARALLEL_WORKERS",
    "PARALLEL_ADS_N",
    "FOREST_LEAF_COUNT",
    "FOREST_TREE_CAP",
    "SMOKE_PARALLEL_WORKERS",
    "SMOKE_FOREST_LEAF_COUNT",
    "SMOKE_FOREST_TREE_CAP",
    "parallel_speedup_floor",
    "scale_point",
    "parallel_ads_point",
    "forest_scale_point",
    "run_scale",
    "run_scale_smoke",
]

#: Database sizes of the full ``--scale`` sweep.
SCALE_N_VALUES = (500, 1000, 2000)
#: Largest n at which the node-at-a-time engine is also built for the
#: speedup comparison; beyond it only the batched engine runs (a single
#: node-at-a-time build at n = 2000 takes tens of minutes).
SCALE_COMPARE_MAX_N = 1000
#: Wall-clock construction speedup the batched engine must clear at the
#: largest compared n (the acceptance gate: >= 3x at n = 1000).
SCALE_SPEEDUP_FLOOR = 3.0
#: Best-of-``SCALE_REPEATS`` timing with ``gc.collect()`` between runs.
SCALE_REPEATS = 3
#: Where ``python -m repro.bench --scale`` records its trajectory.
SCALE_REPORT_FILENAME = "BENCH_scale.json"

#: Reduced-n configuration used by ``--scale --smoke`` (CI).
SMOKE_SCALE_N_VALUES = (120, 240)
SMOKE_SCALE_SPEEDUP_FLOOR = 1.5
SMOKE_SCALE_REPORT_FILENAME = "BENCH_scale_smoke.json"

#: Worker count of the full parallel-construction gates.
PARALLEL_WORKERS = 4
#: Database size of the full-ADS serial-vs-parallel comparison.
PARALLEL_ADS_N = 1000
#: Merkle leaves per subdomain tree in the forest-stage point: n = 10^4
#: records plus the two boundary tokens (paper section 3.1, step 2).
FOREST_LEAF_COUNT = 10_002
#: Subdomain-tree cap of the forest-stage point.  The real n = 10^4 sweep
#: has Theta(n^2) subdomains -- far beyond any benchmark budget -- so the
#: point builds this many adjacent-transposition trees and records the cap.
FOREST_TREE_CAP = 20_000
#: Reduced parallel configuration used by ``--scale --smoke`` (CI): two
#: workers over a small forest, same identity assertions.
SMOKE_PARALLEL_WORKERS = 2
SMOKE_PARALLEL_ADS_N = 240
SMOKE_FOREST_LEAF_COUNT = 258
SMOKE_FOREST_TREE_CAP = 2400

#: Affinity-scaled speedup floors: per-worker efficiency each gate demands
#: and the cap it saturates at (the acceptance bar: >= 2.5x at 4 workers
#: on >= 4 free cores).  ``*_SINGLE_CORE`` is the containment bound used
#: when only one core is available -- the parallel build then pays fork,
#: shared-memory and duplicated shard-boundary hashing with nothing to
#: overlap it against, so the gate only refuses a collapse.
PARALLEL_PER_WORKER = 0.625
PARALLEL_FLOOR_CAP = 2.5
PARALLEL_SINGLE_CORE_FLOOR = 0.15
SMOKE_PARALLEL_PER_WORKER = 0.6
SMOKE_PARALLEL_FLOOR_CAP = 1.2
#: The smoke forest is small enough that fork start-up is a visible share
#: of the parallel time, so its containment bound sits lower than the
#: full run's.
SMOKE_PARALLEL_SINGLE_CORE_FLOOR = 0.05


def parallel_speedup_floor(
    workers: int,
    per_worker: float = PARALLEL_PER_WORKER,
    cap: float = PARALLEL_FLOOR_CAP,
    single_core: float = PARALLEL_SINGLE_CORE_FLOOR,
) -> Tuple[float, int]:
    """Affinity-scaled gate floor: ``(floor, effective_workers)``.

    ``effective_workers`` is the worker count actually backed by CPU
    affinity (:func:`repro.core.parallel.available_cores`); the floor
    scales with it so the same gate passes on a 4-core CI runner and a
    single-core container without pretending the latter can parallelize.
    """
    effective = min(int(workers), available_cores())
    if effective <= 1:
        return single_core, effective
    return min(cap, per_worker * effective), effective


def scale_point(
    n_records: int,
    seed: int = 0,
    repeats: int = SCALE_REPEATS,
    compare: bool = True,
) -> Dict[str, object]:
    """One sweep point: batched engine, optionally vs node-at-a-time.

    When ``compare`` is set, the node-at-a-time engine (PR 2,
    ``batch_hashing=False``) is built on the same workload and the root
    hash and logical hash counter are asserted bit-identical -- the
    speedup must never come from computing something else.
    """
    workload = WorkloadConfig(n_records=n_records, dimension=1, seed=seed)
    dataset = make_dataset(workload)
    template = make_template(workload)

    batched_seconds, batched_tree, batched_counters = best_ifmh_build(
        dataset, template, repeats, hash_consing=True, batch_hashing=True
    )
    point: Dict[str, object] = {
        "n": n_records,
        "subdomains": batched_tree.subdomain_count,
        "logical_hashes": batched_counters.hash_operations,
        "batched": {
            "build_seconds": batched_seconds,
            "physical_hashes": batched_counters.physical_hash_operations,
        },
        "engine_stats": batched_tree.merkle_engine_stats,
        "node_engine": None,
        "speedup": None,
    }
    if compare:
        batched_root = batched_tree.root_hash
        del batched_tree
        node_seconds, node_tree, node_counters = best_ifmh_build(
            dataset, template, repeats, hash_consing=True, batch_hashing=False
        )
        if node_tree.root_hash != batched_root:  # pragma: no cover - correctness guard
            raise AssertionError("batched engine changed the IFMH root hash")
        if node_counters.hash_operations != batched_counters.hash_operations:
            raise AssertionError(  # pragma: no cover - correctness guard
                "batched engine changed the logical hash count"
            )
        point["node_engine"] = {
            "build_seconds": node_seconds,
            "physical_hashes": node_counters.physical_hash_operations,
        }
        point["speedup"] = node_seconds / batched_seconds
        del node_tree
    else:
        del batched_tree
    gc.collect()
    return point


def parallel_ads_point(
    n_records: int = PARALLEL_ADS_N,
    workers: int = PARALLEL_WORKERS,
    seed: int = 0,
    repeats: int = SCALE_REPEATS,
) -> Dict[str, object]:
    """Full IFMH construction, serial vs ``workers`` forked processes.

    Bit-identity is asserted before any timing is reported: root hash,
    logical *and* physical hash counters and the engine's node statistics
    must match exactly (the parallel build is a wall-clock knob, never a
    semantic one).
    """
    workload = WorkloadConfig(n_records=n_records, dimension=1, seed=seed)
    dataset = make_dataset(workload)
    template = make_template(workload)
    serial_seconds, serial_tree, serial_counters = best_ifmh_build(
        dataset, template, repeats, hash_consing=True, batch_hashing=True
    )
    parallel_seconds, parallel_tree, parallel_counters = best_ifmh_build(
        dataset,
        template,
        repeats,
        hash_consing=True,
        batch_hashing=True,
        construction_workers=workers,
    )
    if parallel_tree.root_hash != serial_tree.root_hash:  # pragma: no cover
        raise AssertionError("parallel construction changed the IFMH root hash")
    if (  # pragma: no cover - correctness guard
        parallel_counters.hash_operations != serial_counters.hash_operations
        or parallel_counters.physical_hash_operations
        != serial_counters.physical_hash_operations
    ):
        raise AssertionError("parallel construction changed the hash counters")
    if (  # pragma: no cover - correctness guard
        parallel_tree.merkle_engine_stats != serial_tree.merkle_engine_stats
    ):
        raise AssertionError("parallel construction changed the engine stats")
    point: Dict[str, object] = {
        "n": n_records,
        "workers": workers,
        "subdomains": serial_tree.subdomain_count,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "logical_hashes": serial_counters.hash_operations,
        "physical_hashes": serial_counters.physical_hash_operations,
    }
    del serial_tree, parallel_tree
    gc.collect()
    return point


def _transposition_forest(
    leaf_count: int, tree_count: int
) -> Tuple[List[bytes], np.ndarray]:
    """Leaf payloads and swap positions of the synthetic step-2 forest.

    Row ``t`` of the leaf matrix is row ``t - 1`` with one adjacent
    transposition applied -- the exact relation between consecutive
    subdomains of the IFMH sweep.  Positions come from a fixed
    multiplicative hash so the forest is deterministic without any RNG.
    """
    payloads = [b"scale-leaf-%010d" % index for index in range(leaf_count)]
    positions = (np.arange(1, tree_count, dtype=np.int64) * 2654435761) % (
        leaf_count - 1
    )
    return payloads, positions


def _build_forest_once(
    payloads: List[bytes], positions: np.ndarray, leaf_count: int, workers: int
) -> Tuple[float, np.ndarray, ForestHasher, HashFunction]:
    """One timed forest build (leaf interning and matrix fill untimed)."""
    tree_count = len(positions) + 1
    hasher = ForestHasher(workers=workers)
    hash_function = HashFunction()
    leaf_ids = hasher.intern_leaves(payloads, hash_function)
    matrix = np.empty((tree_count, leaf_count), dtype=np.int64)
    matrix[0] = leaf_ids
    for tree in range(1, tree_count):
        row = matrix[tree - 1].copy()
        position = positions[tree - 1]
        row[position], row[position + 1] = row[position + 1], row[position]
        matrix[tree] = row
    gc.collect()
    started = time.perf_counter()
    roots = hasher.build_forest(matrix, hash_function)
    return time.perf_counter() - started, roots, hasher, hash_function


def forest_scale_point(
    leaf_count: int = FOREST_LEAF_COUNT,
    tree_cap: int = FOREST_TREE_CAP,
    workers: int = PARALLEL_WORKERS,
    repeats: int = 1,
) -> Dict[str, object]:
    """The parallelized forest stage in isolation at n = 10^4 leaf width.

    Serial and parallel builds of the identical synthetic forest are
    asserted bit-identical -- subdomain root digests, the arena node
    count and both hash counters, plus every arena digest row byte for
    byte whenever the shard bounds land on the serial chunk grid (with
    fewer chunks than workers the row-split fallback renumbers nodes;
    the digest *values* still match, see ``docs/scaling.md``).  A fresh
    hasher is built per run (a sealed or warm pair cache would make
    repeats incomparable).
    """
    payloads, positions = _transposition_forest(leaf_count, tree_cap)

    def best_build(worker_count: int):
        best_seconds = float("inf")
        built = None
        for _ in range(max(1, repeats)):
            built = None  # release the previous arena before rebuilding
            seconds, roots, hasher, hash_function = _build_forest_once(
                payloads, positions, leaf_count, worker_count
            )
            best_seconds = min(best_seconds, seconds)
            built = (roots, hasher, hash_function)
        return best_seconds, built

    serial_seconds, (serial_roots, serial_hasher, serial_hf) = best_build(1)
    parallel_seconds, (parallel_roots, parallel_hasher, parallel_hf) = best_build(
        workers
    )
    serial_arena = serial_hasher.finalize()
    parallel_arena = parallel_hasher.finalize()
    if not np.array_equal(  # pragma: no cover - correctness guard
        serial_arena.digests[serial_roots], parallel_arena.digests[parallel_roots]
    ):
        raise AssertionError("parallel forest build changed a subdomain root digest")
    if len(serial_arena) != len(parallel_arena):  # pragma: no cover
        raise AssertionError("parallel forest build changed the distinct node count")
    chunk_rows = max(1, arena_module._CHUNK_ELEMENTS // leaf_count)
    chunk_aligned = -(-tree_cap // chunk_rows) >= workers
    if chunk_aligned and not np.array_equal(  # pragma: no cover - guard
        serial_arena.digests, parallel_arena.digests
    ):
        raise AssertionError("parallel forest build changed the arena digests")
    if (  # pragma: no cover - correctness guard
        serial_hf.call_count != parallel_hf.call_count
        or serial_hf.physical_count != parallel_hf.physical_count
    ):
        raise AssertionError("parallel forest build changed the hash counters")
    point: Dict[str, object] = {
        "leaf_count": leaf_count,
        "records": leaf_count - 2,
        "trees": tree_cap,
        "tree_cap_note": (
            "tree count capped; the full sweep at this n has Theta(n^2) subdomains"
        ),
        "workers": workers,
        "chunk_aligned": bool(chunk_aligned),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "arena_nodes": int(serial_arena.digests.shape[0]),
        "physical_hashes": serial_hf.physical_count,
    }
    del serial_arena, parallel_arena, serial_hasher, parallel_hasher
    gc.collect()
    return point


def run_scale(
    n_values: Sequence[int] = SCALE_N_VALUES,
    seed: int = 0,
    repeats: int = SCALE_REPEATS,
    compare_max_n: int = SCALE_COMPARE_MAX_N,
    speedup_floor: float = SCALE_SPEEDUP_FLOOR,
    output_path: Optional[str] = SCALE_REPORT_FILENAME,
    parallel_workers: int = PARALLEL_WORKERS,
    parallel_ads_n: int = PARALLEL_ADS_N,
    forest_leaf_count: int = FOREST_LEAF_COUNT,
    forest_tree_cap: int = FOREST_TREE_CAP,
    parallel_per_worker: float = PARALLEL_PER_WORKER,
    parallel_cap: float = PARALLEL_FLOOR_CAP,
    parallel_single_core: float = PARALLEL_SINGLE_CORE_FLOOR,
) -> Tuple[List[ExperimentResult], List[str]]:
    """Sweep the scale benchmark and gate the batched engine's speedup.

    Returns ``(results, failures)``; an empty failure list means the
    largest compared scale cleared ``speedup_floor`` and both parallel
    points cleared their affinity-scaled floors.  When ``output_path`` is
    set the trajectory is written there as JSON.
    """
    result = ExperimentResult(
        experiment_id="scale-construction",
        title="IFMH construction at scale: node-at-a-time vs level-order batched engine",
        parameters={"seed": seed, "repeats": repeats, "floor": speedup_floor},
        columns=(
            "n",
            "engine",
            "build_seconds",
            "speedup",
            "logical_hashes",
            "physical_hashes",
            "subdomains",
        ),
    )
    trajectory: List[Dict[str, object]] = []
    for n_records in n_values:
        point = scale_point(
            n_records, seed=seed, repeats=repeats, compare=n_records <= compare_max_n
        )
        trajectory.append(point)
        node = point["node_engine"]
        if node is not None:
            result.add_row(
                n=n_records,
                engine="node-at-a-time",
                build_seconds=node["build_seconds"],
                speedup=1.0,
                logical_hashes=point["logical_hashes"],
                physical_hashes=node["physical_hashes"],
                subdomains=point["subdomains"],
            )
        batched = point["batched"]
        result.add_row(
            n=n_records,
            engine="batched",
            build_seconds=batched["build_seconds"],
            speedup=point["speedup"] if point["speedup"] is not None else float("nan"),
            logical_hashes=point["logical_hashes"],
            physical_hashes=batched["physical_hashes"],
            subdomains=point["subdomains"],
        )

    compared = [point for point in trajectory if point["speedup"] is not None]
    failures: List[str] = []
    headline: Optional[Dict[str, object]] = None
    if not compared:
        failures.append("no sweep point ran the node-at-a-time comparison; nothing to gate")
    else:
        headline = compared[-1]
        if headline["speedup"] < speedup_floor:
            failures.append(
                f"batched engine sped construction up only {headline['speedup']:.2f}x "
                f"at n={headline['n']} (floor {speedup_floor:.2f}x)"
            )

    parallel_floor, effective_workers = parallel_speedup_floor(
        parallel_workers, parallel_per_worker, parallel_cap, parallel_single_core
    )
    ads_parallel = parallel_ads_point(
        parallel_ads_n, workers=parallel_workers, seed=seed, repeats=repeats
    )
    forest_parallel = forest_scale_point(
        forest_leaf_count, forest_tree_cap, workers=parallel_workers
    )
    parallel_result = ExperimentResult(
        experiment_id="scale-parallel-construction",
        title=(
            "Parallel forest construction: serial vs "
            f"{parallel_workers}-worker sharded build"
        ),
        parameters={
            "workers": parallel_workers,
            "effective_workers": effective_workers,
            "floor": parallel_floor,
        },
        columns=(
            "stage",
            "n",
            "trees",
            "serial_seconds",
            "parallel_seconds",
            "speedup",
            "physical_hashes",
        ),
    )
    parallel_result.add_row(
        stage="full-ads",
        n=ads_parallel["n"],
        trees=ads_parallel["subdomains"],
        serial_seconds=ads_parallel["serial_seconds"],
        parallel_seconds=ads_parallel["parallel_seconds"],
        speedup=ads_parallel["speedup"],
        physical_hashes=ads_parallel["physical_hashes"],
    )
    parallel_result.add_row(
        stage="forest-10k",
        n=forest_parallel["records"],
        trees=forest_parallel["trees"],
        serial_seconds=forest_parallel["serial_seconds"],
        parallel_seconds=forest_parallel["parallel_seconds"],
        speedup=forest_parallel["speedup"],
        physical_hashes=forest_parallel["physical_hashes"],
    )
    for stage, point in (("full-ADS", ads_parallel), ("forest-stage", forest_parallel)):
        if point["speedup"] < parallel_floor:
            failures.append(
                f"{stage} parallel build reached only {point['speedup']:.2f}x with "
                f"{parallel_workers} workers on {effective_workers} effective "
                f"core(s) (affinity-scaled floor {parallel_floor:.2f}x)"
            )

    if output_path is not None:
        payload = {
            "benchmark": "ifmh-construction-scale",
            "seed": seed,
            "repeats": repeats,
            "floor": speedup_floor,
            "headline_n": headline["n"] if headline else None,
            "headline_speedup": headline["speedup"] if headline else None,
            "trajectory": trajectory,
            "parallel": {
                "workers": parallel_workers,
                "effective_workers": effective_workers,
                "floor": parallel_floor,
                "full_ads": ads_parallel,
                "forest_stage": forest_parallel,
            },
        }
        with open(output_path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
    return [result, parallel_result], failures


def run_scale_smoke(
    seed: int = 0, output_path: Optional[str] = SMOKE_SCALE_REPORT_FILENAME
) -> Tuple[List[ExperimentResult], List[str]]:
    """Reduced-n scale gate for CI (same code path, minutes -> seconds).

    The parallel points run with two workers over a small forest; the
    identity assertions are the same as the full run, only the timings
    (and therefore the floors) shrink.
    """
    return run_scale(
        n_values=SMOKE_SCALE_N_VALUES,
        seed=seed,
        repeats=SCALE_REPEATS,
        compare_max_n=max(SMOKE_SCALE_N_VALUES),
        speedup_floor=SMOKE_SCALE_SPEEDUP_FLOOR,
        output_path=output_path,
        parallel_workers=SMOKE_PARALLEL_WORKERS,
        parallel_ads_n=SMOKE_PARALLEL_ADS_N,
        forest_leaf_count=SMOKE_FOREST_LEAF_COUNT,
        forest_tree_cap=SMOKE_FOREST_TREE_CAP,
        parallel_per_worker=SMOKE_PARALLEL_PER_WORKER,
        parallel_cap=SMOKE_PARALLEL_FLOOR_CAP,
        parallel_single_core=SMOKE_PARALLEL_SINGLE_CORE_FLOOR,
    )
