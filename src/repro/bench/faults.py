"""Byzantine fault-injection benchmark (``--faults``): resilient serving gate.

A pool of replicas is cold-started from one published artifact and a
seeded :class:`~repro.resilience.faults.FaultPlan` makes some of them
misbehave: one tampers with results, one crashes, one serves a stale
pre-update epoch, one lags past the per-attempt timeout.  The
:class:`~repro.resilience.pool.ResilientClient` then runs a mixed query
workload against the pool, verifying every answer and failing over under
its :class:`~repro.resilience.policy.RetryPolicy`.

The acceptance gates are the security and availability claims of the
resilient front-end:

* **zero** tampered answers accepted -- every accepted answer is
  cross-checked against an out-of-band honest oracle server;
* 100% of accepted answers carry a passing client verification report;
* goodput (accepted / issued queries) clears its floor despite the
  adversarial pool;
* every required fault kind (tamper, crash, stale-epoch) actually fired,
  and no attempted tamper attack was vacuous (inapplicable on every
  query it was tried on);
* the whole run is **deterministic**: a second run with the same seed
  must reproduce the outcome fields bit for bit (all timing is virtual,
  all randomness comes from injected seeded rngs).

``python -m repro.bench --faults`` runs the full workload and writes
``BENCH_faults.json``; ``--faults --smoke`` is the reduced CI gate
(writes ``BENCH_faults_smoke.json``).
"""

from __future__ import annotations

import json
import os
import random
import tempfile
from typing import Dict, List, Optional, Tuple

from repro.attacks.tamper import AttackApplicability
from repro.bench.harness import ExperimentResult
from repro.core.client import Client
from repro.core.config import SystemConfig
from repro.core.owner import DataOwner
from repro.core.records import Record
from repro.core.server import Server
from repro.crypto.signer import make_signer
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.policy import RetryPolicy, VirtualClock
from repro.resilience.pool import ReplicaPool, ResilientClient
from repro.workloads.generator import (
    WorkloadConfig,
    make_dataset,
    make_queries,
    make_template,
)

__all__ = [
    "FAULTS_POOL_SIZE",
    "FAULTS_GOODPUT_FLOOR",
    "FAULTS_N_RECORDS",
    "FAULTS_QUERY_COUNT",
    "FAULTS_REPORT_FILENAME",
    "SMOKE_FAULTS_N_RECORDS",
    "SMOKE_FAULTS_QUERY_COUNT",
    "SMOKE_FAULTS_REPORT_FILENAME",
    "run_faults",
    "run_faults_smoke",
]

#: Replica count of the adversarial pool (>= 4 so the byzantine plan fits
#: one tampering, one crashing and one stale-epoch replica plus an honest
#: slot; the fifth slot is the high-latency replica).
FAULTS_POOL_SIZE = 5
#: Fraction of issued queries that must end with an accepted (verified)
#: answer despite the adversarial pool.
FAULTS_GOODPUT_FLOOR = 0.95
#: Fault kinds that must each have fired at least once for the run to be a
#: meaningful adversarial test.
REQUIRED_FAULT_KINDS = ("tamper", "crash", "stale-epoch")

#: Full-run workload: database size and issued queries.
FAULTS_N_RECORDS = 240
FAULTS_QUERY_COUNT = 150
#: Where ``python -m repro.bench --faults`` records its outcome.
FAULTS_REPORT_FILENAME = "BENCH_faults.json"

#: Reduced workload used by ``--faults --smoke`` (CI).
SMOKE_FAULTS_N_RECORDS = 96
SMOKE_FAULTS_QUERY_COUNT = 45
SMOKE_FAULTS_REPORT_FILENAME = "BENCH_faults_smoke.json"

#: Simulated honest per-query service time (virtual seconds) and the
#: injected latency of the lagging replica -- chosen to straddle the retry
#: policy's 1s per-attempt timeout.
SERVICE_TIME = 0.01
LATENCY_DELAY = 5.0


def _build_artifacts(n_records: int, seed: int, directory: str) -> Dict[str, object]:
    """Owner-side setup: publish a stale epoch-0 and a current epoch-1 artifact.

    The insert between the two publishes bumps the ADS epoch, so the
    epoch-0 artifact is exactly what a stale (not yet updated) replica
    would serve -- genuine signatures, wrong epoch.
    """
    workload = WorkloadConfig(n_records=n_records, dimension=1, seed=seed)
    dataset = make_dataset(workload)
    template = make_template(workload)
    config = SystemConfig(scheme="one-signature", signature_algorithm="hmac")
    keypair = make_signer("hmac", rng=random.Random(seed + 99))
    owner = DataOwner(dataset, template, config=config, keypair=keypair)

    stale_path = os.path.join(directory, "ads-epoch0.npz")
    owner.publish(stale_path)

    rng = random.Random(seed + 7)
    low, high = workload.value_range
    owner.insert(
        Record(
            record_id=n_records,
            values=(rng.uniform(low, high), rng.uniform(low, high)),
            label="post-publish-insert",
        )
    )
    current_path = os.path.join(directory, "ads-epoch1.npz")
    owner.publish(current_path)

    return {
        "dataset": owner.dataset,
        "template": template,
        "stale_path": stale_path,
        "current_path": current_path,
        "epoch": owner.epoch,
    }


def _serve(
    setup: Dict[str, object],
    queries,
    seed: int,
    oracle: Server,
) -> Dict[str, object]:
    """One complete serving run against a freshly assembled adversarial pool.

    Everything stateful (servers, injectors, pool, clock, retry rng) is
    rebuilt from the artifacts and the seed, so calling this twice with the
    same inputs must produce identical outcome fields -- the determinism
    gate diffs the returned dict directly.
    """
    clock = VirtualClock()
    plan = FaultPlan.byzantine(
        FAULTS_POOL_SIZE, latency_delay=LATENCY_DELAY, latency_rate=0.5
    )
    stale_server = Server.from_artifact(setup["stale_path"])
    applicability = AttackApplicability()
    replicas = []
    for index in range(FAULTS_POOL_SIZE):
        faults = plan.faults_for(index)
        replicas.append(
            FaultInjector(
                Server.from_artifact(setup["current_path"]),
                faults,
                seed=seed + 1000 + index,
                clock=clock,
                service_time=SERVICE_TIME,
                stale_server=(
                    stale_server
                    if any(spec.kind == "stale-epoch" for spec in faults)
                    else None
                ),
                replica_id=index,
                applicability=applicability,
            )
        )
    pool = ReplicaPool(replicas, clock=clock, quarantine_threshold=2, quarantine_period=5.0)
    client = Client.from_artifact(setup["current_path"])
    resilient = ResilientClient(pool, client, RetryPolicy(), seed=seed)

    accepted = degraded = exhausted = 0
    tampered_accepted = accepted_unverified = 0
    total_attempts = 0
    attempt_outcomes: Dict[str, int] = {}
    replica_trace: List[Optional[int]] = []
    for query in queries:
        outcome = resilient.execute(query)
        total_attempts += len(outcome.attempts)
        for attempt in outcome.attempts:
            attempt_outcomes[attempt.outcome] = (
                attempt_outcomes.get(attempt.outcome, 0) + 1
            )
        replica_trace.append(outcome.replica_id)
        if outcome.accepted:
            accepted += 1
            if outcome.degraded:
                degraded += 1
            if outcome.report is None or not outcome.report.is_valid:
                accepted_unverified += 1
            # Out-of-band ground truth: an accepted answer must be exactly
            # what an honest replica would have served.
            honest = oracle.execute(query)
            if (
                outcome.execution.result != honest.result
                or outcome.execution.verification_object != honest.verification_object
            ):
                tampered_accepted += 1
        else:
            exhausted += 1

    injected: Dict[str, int] = {}
    for replica in replicas:
        for kind, count in replica.injected_counts().items():
            injected[kind] = injected.get(kind, 0) + count
    return {
        "queries": len(queries),
        "accepted": accepted,
        "degraded": degraded,
        "exhausted": exhausted,
        "goodput": accepted / len(queries),
        "tampered_accepted": tampered_accepted,
        "accepted_unverified": accepted_unverified,
        "total_attempts": total_attempts,
        "attempt_outcomes": dict(sorted(attempt_outcomes.items())),
        "injected": dict(sorted(injected.items())),
        "replica_trace": replica_trace,
        "virtual_seconds": clock.now(),
        "pool_status": pool.status(),
        "attacks_applied": dict(sorted(applicability.applied.items())),
        "attacks_skipped": dict(sorted(applicability.skipped.items())),
        "attacks_vacuous": list(applicability.vacuous()),
    }


def run_faults(
    n_records: int = FAULTS_N_RECORDS,
    query_count: int = FAULTS_QUERY_COUNT,
    seed: int = 0,
    goodput_floor: float = FAULTS_GOODPUT_FLOOR,
    output_path: Optional[str] = FAULTS_REPORT_FILENAME,
) -> Tuple[List[ExperimentResult], List[str]]:
    """Run the adversarial-pool benchmark and gate its claims.

    Returns ``(results, failures)``; an empty failure list means zero
    tampered answers were accepted, every accepted answer was verified,
    goodput cleared ``goodput_floor``, every required fault kind fired, no
    attempted tamper attack was vacuous, and a same-seed re-run reproduced
    the outcome exactly.  When ``output_path`` is set the outcome is
    written there as JSON.
    """
    with tempfile.TemporaryDirectory(prefix="repro-faults-") as directory:
        setup = _build_artifacts(n_records, seed, directory)
        queries = make_queries(
            setup["dataset"], setup["template"], count=query_count, seed=seed + 3
        )
        oracle = Server.from_artifact(setup["current_path"])
        outcome = _serve(setup, queries, seed, oracle)
        replay = _serve(setup, queries, seed, oracle)

    deterministic = outcome == replay
    failures: List[str] = []
    if outcome["tampered_accepted"]:
        failures.append(
            f"{outcome['tampered_accepted']} tampered answers were accepted; "
            "the resilient client must accept only oracle-identical results"
        )
    if outcome["accepted_unverified"]:
        failures.append(
            f"{outcome['accepted_unverified']} accepted answers lack a passing "
            "verification report; acceptance must imply client verification"
        )
    if outcome["goodput"] < goodput_floor:
        failures.append(
            f"goodput {outcome['goodput']:.3f} is below the floor "
            f"{goodput_floor:.2f} despite an available honest replica"
        )
    for kind in REQUIRED_FAULT_KINDS:
        if not outcome["injected"].get(kind):
            failures.append(
                f"fault kind {kind!r} never fired; the adversarial pool "
                "exercised less than the plan promises"
            )
    if outcome["attacks_vacuous"]:
        failures.append(
            "tamper attacks attempted but never applicable (vacuous): "
            + ", ".join(outcome["attacks_vacuous"])
        )
    if not deterministic:
        diff = [
            key
            for key in outcome
            if outcome[key] != replay[key]
        ]
        failures.append(
            "same-seed replay diverged on outcome fields "
            f"({', '.join(sorted(diff))}); the harness must be free of "
            "wall-clock randomness"
        )

    result = ExperimentResult(
        experiment_id="byzantine-faults",
        title="Resilient serving under an adversarial replica pool",
        parameters={
            "seed": seed,
            "n": n_records,
            "pool": FAULTS_POOL_SIZE,
            "floor": goodput_floor,
        },
        columns=(
            "queries",
            "accepted",
            "degraded",
            "exhausted",
            "goodput",
            "tampered_accepted",
            "attempts",
            "inj_tamper",
            "inj_crash",
            "inj_stale",
            "inj_latency",
        ),
    )
    result.add_row(
        queries=outcome["queries"],
        accepted=outcome["accepted"],
        degraded=outcome["degraded"],
        exhausted=outcome["exhausted"],
        goodput=outcome["goodput"],
        tampered_accepted=outcome["tampered_accepted"],
        attempts=outcome["total_attempts"],
        inj_tamper=outcome["injected"].get("tamper", 0),
        inj_crash=outcome["injected"].get("crash", 0),
        inj_stale=outcome["injected"].get("stale-epoch", 0),
        inj_latency=outcome["injected"].get("latency", 0),
    )

    if output_path is not None:
        payload = {
            "benchmark": "byzantine-fault-injection",
            "seed": seed,
            "n": n_records,
            "pool_size": FAULTS_POOL_SIZE,
            "plan": f"byzantine-{FAULTS_POOL_SIZE}",
            "goodput_floor": goodput_floor,
            "deterministic": deterministic,
            "epoch": setup["epoch"],
            "outcome": outcome,
        }
        with open(output_path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
    return [result], failures


def run_faults_smoke(
    seed: int = 0, output_path: Optional[str] = SMOKE_FAULTS_REPORT_FILENAME
) -> Tuple[List[ExperimentResult], List[str]]:
    """Reduced fault-injection gate for CI (same code path and gates)."""
    return run_faults(
        n_records=SMOKE_FAULTS_N_RECORDS,
        query_count=SMOKE_FAULTS_QUERY_COUNT,
        seed=seed,
        goodput_floor=FAULTS_GOODPUT_FLOOR,
        output_path=output_path,
    )
