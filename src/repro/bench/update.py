"""Incremental-update benchmark (``--update``): changed-path vs full rebuild.

The point of the update subsystem (:mod:`repro.ifmh.updates`) is that the
owner's long-lived ADS absorbs a single-record insert or delete without
paying the full reconstruction again.  This benchmark quantifies that: at
each database size the owner-side build is timed (best-of-``repeats``,
``gc.collect()`` before every run -- the shared timing discipline of all
wall-clock gates), then alternating single-record inserts and deletes are
applied and timed the same way.  A correctness guard rebuilds the final
dataset from scratch at the final epoch and asserts the updated ADS is
bit-identical (root hash, root signature, one query's verification object
and per-query counters) before any number is reported.

``python -m repro.bench --update`` runs n = 1000 and writes
``BENCH_update.json``, gating single-record updates (both the insert and
the delete) >= 10x faster than a full rebuild; ``--update --smoke`` is the
reduced-n CI version of the same gate.  Builds use the fast ``hmac``
signer with a pre-generated key so the measured costs are ADS maintenance,
not key generation.
"""

from __future__ import annotations

import gc
import json
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import ExperimentResult
from repro.core.config import SystemConfig
from repro.core.owner import DataOwner
from repro.core.queries import TopKQuery
from repro.core.records import Record
from repro.core.server import Server
from repro.crypto.signer import make_signer
from repro.workloads.generator import WorkloadConfig, make_dataset, make_template

__all__ = [
    "UPDATE_N_VALUES",
    "UPDATE_SPEEDUP_FLOOR",
    "UPDATE_REPEATS",
    "UPDATE_REPORT_FILENAME",
    "SMOKE_UPDATE_N_VALUES",
    "SMOKE_UPDATE_SPEEDUP_FLOOR",
    "SMOKE_UPDATE_REPORT_FILENAME",
    "update_point",
    "run_update",
    "run_update_smoke",
]

#: Database sizes of the full ``--update`` sweep.
UPDATE_N_VALUES = (1000,)
#: Speedup both the single-record insert and delete must clear over a full
#: rebuild at the largest n (the acceptance gate).
UPDATE_SPEEDUP_FLOOR = 10.0
#: Best-of-``UPDATE_REPEATS`` timing with ``gc.collect()`` between runs.
UPDATE_REPEATS = 3
#: Where ``python -m repro.bench --update`` records its trajectory.
UPDATE_REPORT_FILENAME = "BENCH_update.json"

#: Reduced-n configuration used by ``--update --smoke`` (CI).  The floor is
#: conservative: at a few hundred records the changed-path update's fixed
#: vectorization overheads are not amortized as far as at n = 1000.
SMOKE_UPDATE_N_VALUES = (240,)
SMOKE_UPDATE_SPEEDUP_FLOOR = 2.0
SMOKE_UPDATE_REPORT_FILENAME = "BENCH_update_smoke.json"


def update_point(
    n_records: int,
    seed: int = 0,
    repeats: int = UPDATE_REPEATS,
) -> Dict[str, object]:
    """One sweep point: full rebuild vs single-record insert and delete.

    The owner alternates inserting and deleting a fresh record ``repeats``
    times each (every step is a complete single-record update: new epoch,
    new root, new signature); the reported times are the best insert and
    the best delete.  Before timings are reported, the final state must be
    bit-identical to a from-scratch build of the final dataset at the same
    epoch.
    """
    workload = WorkloadConfig(n_records=n_records, dimension=1, seed=seed)
    dataset = make_dataset(workload)
    template = make_template(workload)
    config = SystemConfig(scheme="one-signature", signature_algorithm="hmac")
    keypair = make_signer("hmac", rng=random.Random(seed + 99))

    build_seconds = float("inf")
    owner = None
    for _ in range(repeats):
        owner = None  # release the previous ADS before timing the next build
        gc.collect()
        started = time.perf_counter()
        owner = DataOwner(dataset, template, config=config, keypair=keypair)
        build_seconds = min(build_seconds, time.perf_counter() - started)

    rng = random.Random(seed + 7)
    low, high = workload.value_range
    insert_seconds = float("inf")
    delete_seconds = float("inf")
    strategies = set()
    next_id = n_records
    for _ in range(repeats):
        record = Record(
            record_id=next_id,
            values=(rng.uniform(low, high), rng.uniform(low, high)),
            label=f"update-{next_id}",
        )
        gc.collect()
        started = time.perf_counter()
        report = owner.insert(record)
        insert_seconds = min(insert_seconds, time.perf_counter() - started)
        strategies.add(report.strategy)

        victim = rng.choice(owner.dataset.records).record_id
        gc.collect()
        started = time.perf_counter()
        report = owner.delete(victim)
        delete_seconds = min(delete_seconds, time.perf_counter() - started)
        strategies.add(report.strategy)
        next_id += 1

    # Correctness guard: the speedup must never come from computing
    # something else.  A from-scratch build of the final dataset at the
    # final epoch must match the updated ADS bit for bit.
    fresh = DataOwner(
        owner.dataset, template, config=config, keypair=keypair, epoch=owner.epoch
    )
    if fresh.ads.root_hash != owner.ads.root_hash:  # pragma: no cover - guard
        raise AssertionError("incremental update diverged from a fresh rebuild")
    if fresh.ads.root_signature != owner.ads.root_signature:  # pragma: no cover
        raise AssertionError("incremental update produced a different signature")
    query = TopKQuery(weights=(0.5,), k=min(5, len(owner.dataset)))
    updated_execution = Server(owner.outsource()).execute(query)
    fresh_execution = Server(fresh.outsource()).execute(query)
    if updated_execution.verification_object != fresh_execution.verification_object:
        raise AssertionError(  # pragma: no cover - correctness guard
            "updated ADS produced a different verification object than a rebuild"
        )
    if updated_execution.counters.snapshot() != fresh_execution.counters.snapshot():
        raise AssertionError(  # pragma: no cover - correctness guard
            "updated ADS produced different per-query counters than a rebuild"
        )

    point: Dict[str, object] = {
        "n": n_records,
        "subdomains": owner.ads.subdomain_count,
        "epoch": owner.epoch,
        "build_seconds": build_seconds,
        "insert_seconds": insert_seconds,
        "delete_seconds": delete_seconds,
        "insert_speedup": build_seconds / insert_seconds,
        "delete_speedup": build_seconds / delete_seconds,
        "strategies": sorted(strategies),
    }
    gc.collect()
    return point


def run_update(
    n_values: Sequence[int] = UPDATE_N_VALUES,
    seed: int = 0,
    repeats: int = UPDATE_REPEATS,
    speedup_floor: float = UPDATE_SPEEDUP_FLOOR,
    output_path: Optional[str] = UPDATE_REPORT_FILENAME,
) -> Tuple[List[ExperimentResult], List[str]]:
    """Sweep the update benchmark and gate the changed-path speedup.

    Returns ``(results, failures)``; an empty failure list means both the
    single-record insert and the single-record delete cleared
    ``speedup_floor`` at the largest scale.  When ``output_path`` is set
    the trajectory is written there as JSON.
    """
    result = ExperimentResult(
        experiment_id="incremental-update",
        title="Single-record updates: changed-path rebuild vs full reconstruction",
        parameters={"seed": seed, "repeats": repeats, "floor": speedup_floor},
        columns=(
            "n",
            "build_seconds",
            "insert_seconds",
            "insert_speedup",
            "delete_seconds",
            "delete_speedup",
            "subdomains",
        ),
    )
    trajectory: List[Dict[str, object]] = []
    for n_records in n_values:
        point = update_point(n_records, seed=seed, repeats=repeats)
        trajectory.append(point)
        result.add_row(
            n=point["n"],
            build_seconds=point["build_seconds"],
            insert_seconds=point["insert_seconds"],
            insert_speedup=point["insert_speedup"],
            delete_seconds=point["delete_seconds"],
            delete_speedup=point["delete_speedup"],
            subdomains=point["subdomains"],
        )

    headline = trajectory[-1]
    failures: List[str] = []
    for kind in ("insert", "delete"):
        speedup = headline[f"{kind}_speedup"]
        if speedup < speedup_floor:
            failures.append(
                f"single-record {kind} is only {speedup:.2f}x faster than a full "
                f"rebuild at n={headline['n']} (floor {speedup_floor:.2f}x)"
            )
    if "rebuild" in headline["strategies"]:
        failures.append(
            "an update fell back to the full-rebuild path on the benchmark "
            "workload; the gate must measure the changed-path rebuild"
        )
    if output_path is not None:
        payload = {
            "benchmark": "ifmh-incremental-update",
            "seed": seed,
            "repeats": repeats,
            "floor": speedup_floor,
            "headline_n": headline["n"],
            "headline_insert_speedup": headline["insert_speedup"],
            "headline_delete_speedup": headline["delete_speedup"],
            "trajectory": trajectory,
        }
        with open(output_path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
    return [result], failures


def run_update_smoke(
    seed: int = 0, output_path: Optional[str] = SMOKE_UPDATE_REPORT_FILENAME
) -> Tuple[List[ExperimentResult], List[str]]:
    """Reduced-n update gate for CI (same code path, seconds not minutes)."""
    return run_update(
        n_values=SMOKE_UPDATE_N_VALUES,
        seed=seed,
        repeats=UPDATE_REPEATS,
        speedup_floor=SMOKE_UPDATE_SPEEDUP_FLOOR,
        output_path=output_path,
    )
