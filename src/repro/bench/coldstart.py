"""Cold-start benchmark (``--coldstart``): build vs load-from-artifact.

The point of publishable ADS artifacts (:mod:`repro.core.artifact`) is that
a server restart costs a file load instead of an ADS reconstruction.  This
benchmark quantifies that: at each database size the owner-side build is
timed (best-of-``repeats``, ``gc.collect()`` before every run -- the shared
timing discipline of all wall-clock gates), the ADS is published once, and
:meth:`repro.core.server.Server.from_artifact` is timed the same way.  A
correctness guard asserts that the loaded server answers a query with a
verification object and cost counters bit-identical to the in-process
build before any number is reported.

``python -m repro.bench --coldstart`` sweeps n ∈ {500, 1000} and writes
``BENCH_coldstart.json``, gating load ≥ 10x faster than rebuild at
n = 1000; ``--coldstart --smoke`` is the reduced-n CI version of the same
gate.  Builds use the fast ``hmac`` signer with a pre-generated key so the
measured rebuild cost is ADS construction, not key generation.
"""

from __future__ import annotations

import gc
import json
import os
import random
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import ExperimentResult
from repro.core.config import SystemConfig
from repro.core.owner import DataOwner
from repro.core.queries import TopKQuery
from repro.core.server import Server
from repro.crypto.signer import make_signer
from repro.workloads.generator import WorkloadConfig, make_dataset, make_template

__all__ = [
    "COLDSTART_N_VALUES",
    "COLDSTART_SPEEDUP_FLOOR",
    "COLDSTART_REPEATS",
    "COLDSTART_REPORT_FILENAME",
    "SMOKE_COLDSTART_N_VALUES",
    "SMOKE_COLDSTART_SPEEDUP_FLOOR",
    "SMOKE_COLDSTART_REPORT_FILENAME",
    "coldstart_point",
    "run_coldstart",
    "run_coldstart_smoke",
]

#: Database sizes of the full ``--coldstart`` sweep.
COLDSTART_N_VALUES = (500, 1000)
#: Load-vs-rebuild speedup the artifact path must clear at the largest n
#: (the acceptance gate: loading is >= 10x faster than rebuilding).
COLDSTART_SPEEDUP_FLOOR = 10.0
#: Best-of-``COLDSTART_REPEATS`` timing with ``gc.collect()`` between runs.
COLDSTART_REPEATS = 3
#: Where ``python -m repro.bench --coldstart`` records its trajectory.
COLDSTART_REPORT_FILENAME = "BENCH_coldstart.json"

#: Reduced-n configuration used by ``--coldstart --smoke`` (CI).  The floor
#: is conservative: artifact loading has a fixed per-file cost that the
#: small smoke builds do not amortize as far as the full sweep does.
SMOKE_COLDSTART_N_VALUES = (120, 240)
SMOKE_COLDSTART_SPEEDUP_FLOOR = 2.0
SMOKE_COLDSTART_REPORT_FILENAME = "BENCH_coldstart_smoke.json"


def coldstart_point(
    n_records: int,
    seed: int = 0,
    repeats: int = COLDSTART_REPEATS,
    artifact_path: Optional[str] = None,
) -> Dict[str, object]:
    """One sweep point: owner-side build vs ``Server.from_artifact``.

    Before timings are reported, the loaded server must answer a top-k
    query with records, verification object and per-query counters
    bit-identical to a server wired to the in-process build, and the
    loaded structures' own hash counters must be zero (nothing re-hashed).
    """
    workload = WorkloadConfig(n_records=n_records, dimension=1, seed=seed)
    dataset = make_dataset(workload)
    template = make_template(workload)
    config = SystemConfig(scheme="one-signature", signature_algorithm="hmac")
    keypair = make_signer("hmac", rng=random.Random(seed + 99))

    build_seconds = float("inf")
    owner = None
    for _ in range(repeats):
        owner = None  # release the previous ADS before timing the next build
        gc.collect()
        started = time.perf_counter()
        owner = DataOwner(dataset, template, config=config, keypair=keypair)
        build_seconds = min(build_seconds, time.perf_counter() - started)

    cleanup = artifact_path is None
    if artifact_path is None:
        handle, artifact_path = tempfile.mkstemp(suffix=".npz", prefix="coldstart-")
        os.close(handle)
    try:
        owner.publish(artifact_path)
        artifact_bytes = os.path.getsize(artifact_path)

        load_seconds = float("inf")
        server = None
        for _ in range(repeats):
            server = None
            gc.collect()
            started = time.perf_counter()
            server = Server.from_artifact(artifact_path)
            load_seconds = min(load_seconds, time.perf_counter() - started)
    finally:
        if cleanup:
            os.unlink(artifact_path)

    # Correctness guard: the speedup must never come from loading something
    # else.  One query through both servers, bit-identical end to end.
    query = TopKQuery(weights=(0.5,), k=min(5, n_records))
    built = Server(owner.outsource()).execute(query)
    loaded = server.execute(query)
    if built.result != loaded.result:  # pragma: no cover - correctness guard
        raise AssertionError("loaded server returned different records than the build")
    if built.verification_object != loaded.verification_object:  # pragma: no cover
        raise AssertionError("loaded server produced a different verification object")
    if built.counters.snapshot() != loaded.counters.snapshot():  # pragma: no cover
        raise AssertionError("loaded server produced different per-query counters")
    if server.ads.counters.hash_operations != 0:  # pragma: no cover
        raise AssertionError("artifact load performed ADS hashing")

    point: Dict[str, object] = {
        "n": n_records,
        "subdomains": owner.ads.subdomain_count,
        "build_seconds": build_seconds,
        "load_seconds": load_seconds,
        "speedup": build_seconds / load_seconds,
        "artifact_bytes": artifact_bytes,
    }
    gc.collect()
    return point


def run_coldstart(
    n_values: Sequence[int] = COLDSTART_N_VALUES,
    seed: int = 0,
    repeats: int = COLDSTART_REPEATS,
    speedup_floor: float = COLDSTART_SPEEDUP_FLOOR,
    output_path: Optional[str] = COLDSTART_REPORT_FILENAME,
) -> Tuple[List[ExperimentResult], List[str]]:
    """Sweep the cold-start benchmark and gate the load speedup.

    Returns ``(results, failures)``; an empty failure list means the
    largest scale cleared ``speedup_floor``.  When ``output_path`` is set
    the trajectory is written there as JSON.
    """
    result = ExperimentResult(
        experiment_id="coldstart",
        title="Server cold start: rebuild from scratch vs load published artifact",
        parameters={"seed": seed, "repeats": repeats, "floor": speedup_floor},
        columns=(
            "n",
            "build_seconds",
            "load_seconds",
            "speedup",
            "artifact_bytes",
            "subdomains",
        ),
    )
    trajectory: List[Dict[str, object]] = []
    for n_records in n_values:
        point = coldstart_point(n_records, seed=seed, repeats=repeats)
        trajectory.append(point)
        result.add_row(**point)

    headline = trajectory[-1]
    failures: List[str] = []
    if headline["speedup"] < speedup_floor:
        failures.append(
            f"artifact load is only {headline['speedup']:.2f}x faster than a rebuild "
            f"at n={headline['n']} (floor {speedup_floor:.2f}x)"
        )
    if output_path is not None:
        payload = {
            "benchmark": "ads-artifact-coldstart",
            "seed": seed,
            "repeats": repeats,
            "floor": speedup_floor,
            "headline_n": headline["n"],
            "headline_speedup": headline["speedup"],
            "trajectory": trajectory,
        }
        with open(output_path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
    return [result], failures


def run_coldstart_smoke(
    seed: int = 0, output_path: Optional[str] = SMOKE_COLDSTART_REPORT_FILENAME
) -> Tuple[List[ExperimentResult], List[str]]:
    """Reduced-n cold-start gate for CI (same code path, seconds not minutes)."""
    return run_coldstart(
        n_values=SMOKE_COLDSTART_N_VALUES,
        seed=seed,
        repeats=COLDSTART_REPEATS,
        speedup_floor=SMOKE_COLDSTART_SPEEDUP_FLOOR,
        output_path=output_path,
    )
