"""Experiment definitions: one function per figure of the paper's evaluation.

Every function returns an :class:`~repro.bench.harness.ExperimentResult`
table whose rows carry one x-axis point per approach.  The functions are
pure (given the same :class:`BenchConfig` they return the same numbers up to
wall-clock noise), so the pytest-benchmark targets and ``python -m
repro.bench`` share them.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Optional, Sequence

from repro.attacks.tamper import all_attacks
from repro.bench.harness import (
    BenchConfig,
    ExperimentResult,
    SystemsUnderTest,
    build_systems,
    queries_with_result_size,
)
from repro.core.owner import SIGNATURE_MESH
from repro.geometry.engine import IntervalEngine, LPEngine
from repro.ifmh.ifmh_tree import IFMHTree, MULTI_SIGNATURE, ONE_SIGNATURE
from repro.itree.itree import ITree
from repro.metrics.counters import Counters
from repro.workloads.generator import make_dataset, make_template

__all__ = [
    "fig5_data_owner",
    "fig6_server_fixed_result",
    "fig6d_result_length",
    "fig7_user_verification",
    "fig7c_signature_algorithms",
    "fig8a_vo_size_vs_result_length",
    "fig8b_vo_size_vs_database_size",
    "ablation_geometry_engine",
    "ablation_signing_modes",
    "ablation_intersection_binding",
    "ablation_mesh_sharing",
    "security_attack_matrix",
    "all_experiments",
]

# --------------------------------------------------------------------------
# shared system cache (figures reuse the ADSs built for the same scale)
# --------------------------------------------------------------------------
_SYSTEMS_CACHE: Dict[tuple, SystemsUnderTest] = {}


def _systems(
    config: BenchConfig,
    n_records: int,
    signature_algorithm: Optional[str] = None,
    key_bits: Optional[int] = None,
) -> SystemsUnderTest:
    algorithm = signature_algorithm or config.signature_algorithm
    bits = key_bits if key_bits is not None else config.key_bits
    key = (config.seed, config.dimension, n_records, algorithm, bits, config.build_mode)
    if key not in _SYSTEMS_CACHE:
        _SYSTEMS_CACHE[key] = build_systems(
            config, n_records, signature_algorithm=algorithm, key_bits=bits
        )
    return _SYSTEMS_CACHE[key]


def clear_cache() -> None:
    """Drop every cached system (used by tests that need fresh builds)."""
    _SYSTEMS_CACHE.clear()


# --------------------------------------------------------------------------
# Fig. 5 -- data owner overhead
# --------------------------------------------------------------------------
def fig5_data_owner(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Fig. 5a-5c: signatures created, construction time and ADS size vs n."""
    config = config or BenchConfig()
    result = ExperimentResult(
        experiment_id="fig5",
        title="Data owner overhead (signatures, construction time, ADS size)",
        parameters={"d": config.dimension, "algorithm": config.signature_algorithm},
        columns=("n", "approach", "signatures", "build_seconds", "size_bytes", "subdomains"),
    )
    for n_records in config.n_values:
        systems = _systems(config, n_records)
        for handle in systems:
            ads = handle.owner.ads
            subdomains = ads.cell_count if hasattr(ads, "cell_count") else ads.subdomain_count
            result.add_row(
                n=n_records,
                approach=handle.approach,
                signatures=handle.signature_count,
                build_seconds=handle.build_seconds,
                size_bytes=handle.ads_size_bytes(config.size_model),
                subdomains=subdomains,
            )
    return result


# --------------------------------------------------------------------------
# Fig. 6 -- server overhead
# --------------------------------------------------------------------------
def fig6_server_fixed_result(
    config: Optional[BenchConfig] = None,
    kind: str = "topk",
    result_size: int = 3,
) -> ExperimentResult:
    """Fig. 6a/6b/6c: nodes (cells) traversed to build a VO, result size fixed.

    ``kind`` selects the sub-figure: ``"topk"`` (6a), ``"knn"`` (6b) or
    ``"range"`` (6c); the paper fixes the result size to 3 for all three.
    """
    config = config or BenchConfig()
    result = ExperimentResult(
        experiment_id=f"fig6-{kind}",
        title=f"Server overhead: nodes traversed per {kind} query (|q| = {result_size})",
        parameters={"result_size": result_size, "queries": config.queries_per_point},
        columns=("n", "approach", "nodes_traversed"),
    )
    for n_records in config.n_values:
        systems = _systems(config, n_records)
        queries = queries_with_result_size(
            systems, kind, result_size, config.queries_per_point, seed=config.seed
        )
        for handle in systems:
            total = 0
            for query in queries:
                counters = Counters()
                handle.server.execute(query, counters=counters)
                total += counters.nodes_traversed
            result.add_row(
                n=n_records,
                approach=handle.approach,
                nodes_traversed=total / len(queries),
            )
    return result


def fig6d_result_length(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Fig. 6d: nodes traversed as a function of the result length |q|."""
    config = config or BenchConfig()
    result = ExperimentResult(
        experiment_id="fig6d",
        title="Server overhead vs result length |q| (range queries)",
        parameters={"n": config.fixed_n, "queries": config.queries_per_point},
        columns=("result_size", "approach", "nodes_traversed"),
    )
    systems = _systems(config, config.fixed_n)
    for result_size in config.result_sizes:
        queries = queries_with_result_size(
            systems, "range", result_size, config.queries_per_point, seed=config.seed
        )
        for handle in systems:
            total = 0
            for query in queries:
                counters = Counters()
                handle.server.execute(query, counters=counters)
                total += counters.nodes_traversed
            result.add_row(
                result_size=result_size,
                approach=handle.approach,
                nodes_traversed=total / len(queries),
            )
    return result


# --------------------------------------------------------------------------
# Fig. 7 -- user (client) overhead
# --------------------------------------------------------------------------
def fig7_user_verification(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Fig. 7a/7b/7d: client hash counts, hash time and total verification time."""
    config = config or BenchConfig()
    result = ExperimentResult(
        experiment_id="fig7",
        title="User overhead: verification cost vs result length |q|",
        parameters={
            "n": config.fixed_n,
            "algorithm": config.signature_algorithm,
            "queries": config.queries_per_point,
        },
        columns=(
            "result_size",
            "approach",
            "hash_operations",
            "hash_seconds",
            "signatures_verified",
            "signature_seconds",
            "total_seconds",
        ),
    )
    systems = _systems(config, config.fixed_n)
    for result_size in config.result_sizes:
        queries = queries_with_result_size(
            systems, "range", result_size, config.queries_per_point, seed=config.seed
        )
        for handle in systems:
            hash_operations = 0
            signatures_verified = 0
            hash_seconds = 0.0
            signature_seconds = 0.0
            total_seconds = 0.0
            for query in queries:
                execution = handle.server.execute(query)
                counters = Counters()
                started = time.perf_counter()
                report = handle.client.verify(
                    query, execution.result, execution.verification_object, counters=counters
                )
                total_seconds += time.perf_counter() - started
                assert report.is_valid, report.failures
                hash_operations += counters.hash_operations
                signatures_verified += counters.signatures_verified
                hash_seconds += report.timings.get("hashing", 0.0)
                signature_seconds += report.timings.get("signature", 0.0)
            count = len(queries)
            result.add_row(
                result_size=result_size,
                approach=handle.approach,
                hash_operations=hash_operations / count,
                hash_seconds=hash_seconds / count,
                signatures_verified=signatures_verified / count,
                signature_seconds=signature_seconds / count,
                total_seconds=total_seconds / count,
            )
    return result


def fig7c_signature_algorithms(
    config: Optional[BenchConfig] = None,
    algorithms: Sequence[str] = ("rsa", "dsa"),
) -> ExperimentResult:
    """Fig. 7c: time spent verifying signatures, RSA versus DSA."""
    config = config or BenchConfig()
    result = ExperimentResult(
        experiment_id="fig7c",
        title="Signature verification time: RSA vs DSA",
        parameters={"n": config.fixed_n, "queries": config.queries_per_point},
        columns=("result_size", "approach", "algorithm", "signature_seconds"),
    )
    for algorithm in algorithms:
        key_bits = 1024 if algorithm == "dsa" else config.key_bits
        systems = _systems(config, config.fixed_n, signature_algorithm=algorithm, key_bits=key_bits)
        for result_size in config.result_sizes:
            queries = queries_with_result_size(
                systems, "range", result_size, config.queries_per_point, seed=config.seed
            )
            for handle in systems:
                signature_seconds = 0.0
                for query in queries:
                    execution = handle.server.execute(query)
                    report = handle.client.verify(
                        query, execution.result, execution.verification_object
                    )
                    assert report.is_valid, report.failures
                    signature_seconds += report.timings.get("signature", 0.0)
                result.add_row(
                    result_size=result_size,
                    approach=handle.approach,
                    algorithm=algorithm,
                    signature_seconds=signature_seconds / len(queries),
                )
    return result


# --------------------------------------------------------------------------
# Fig. 8 -- communication overhead
# --------------------------------------------------------------------------
def fig8a_vo_size_vs_result_length(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Fig. 8a: VO size vs result length at a fixed database size."""
    config = config or BenchConfig()
    result = ExperimentResult(
        experiment_id="fig8a",
        title="Verification object size vs result length |q|",
        parameters={"n": config.fixed_n},
        columns=("result_size", "approach", "vo_bytes", "vo_signatures"),
    )
    systems = _systems(config, config.fixed_n)
    dimension = systems.template.dimension
    for result_size in config.result_sizes:
        queries = queries_with_result_size(
            systems, "range", result_size, config.queries_per_point, seed=config.seed
        )
        for handle in systems:
            total_bytes = 0
            total_signatures = 0
            for query in queries:
                execution = handle.server.execute(query)
                vo = execution.verification_object
                total_bytes += vo.size_bytes(dimension, config.size_model)
                total_signatures += vo.signature_count
            count = len(queries)
            result.add_row(
                result_size=result_size,
                approach=handle.approach,
                vo_bytes=total_bytes / count,
                vo_signatures=total_signatures / count,
            )
    return result


def fig8b_vo_size_vs_database_size(
    config: Optional[BenchConfig] = None, result_size: int = 8
) -> ExperimentResult:
    """Fig. 8b: VO size vs database size at a fixed result length."""
    config = config or BenchConfig()
    result = ExperimentResult(
        experiment_id="fig8b",
        title=f"Verification object size vs database size (|q| = {result_size})",
        parameters={"result_size": result_size},
        columns=("n", "approach", "vo_bytes"),
    )
    for n_records in config.n_values:
        systems = _systems(config, n_records)
        dimension = systems.template.dimension
        queries = queries_with_result_size(
            systems, "range", result_size, config.queries_per_point, seed=config.seed
        )
        for handle in systems:
            total_bytes = 0
            for query in queries:
                execution = handle.server.execute(query)
                total_bytes += execution.verification_object.size_bytes(
                    dimension, config.size_model
                )
            result.add_row(
                n=n_records,
                approach=handle.approach,
                vo_bytes=total_bytes / len(queries),
            )
    return result


# --------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# --------------------------------------------------------------------------
def ablation_geometry_engine(
    config: Optional[BenchConfig] = None, n_records: int = 15
) -> ExperimentResult:
    """A1: interval engine vs LP engine for the univariate I-tree build.

    Both engines run the paper's incremental insertion so their check counts
    are comparable; a third row shows the interval engine's vectorized bulk
    fast path on the same workload.
    """
    config = config or BenchConfig()
    workload = config.workload(n_records)
    dataset = make_dataset(workload)
    template = make_template(workload)
    functions = template.functions_for(dataset)
    result = ExperimentResult(
        experiment_id="ablation-geometry",
        title="Geometry engine ablation: I-tree build cost (d = 1)",
        parameters={"n": n_records},
        columns=("engine", "build_seconds", "insertion_checks", "subdomains"),
    )
    variants = (
        ("interval", IntervalEngine(), "incremental"),
        ("lp", LPEngine(), "incremental"),
        ("interval-bulk", IntervalEngine(), "bulk"),
    )
    for name, engine, builder in variants:
        started = time.perf_counter()
        tree = ITree(functions, template.domain, engine=engine, builder=builder)
        elapsed = time.perf_counter() - started
        result.add_row(
            engine=name,
            build_seconds=elapsed,
            insertion_checks=tree.insertion_checks,
            subdomains=tree.subdomain_count,
        )
    return result


def ablation_signing_modes(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """A2: one-signature vs multi-signature VO size and verification cost."""
    config = config or BenchConfig()
    systems = _systems(config, config.fixed_n)
    dimension = systems.template.dimension
    result = ExperimentResult(
        experiment_id="ablation-signing",
        title="One-signature vs multi-signature trade-off",
        parameters={"n": config.fixed_n},
        columns=("approach", "owner_signatures", "ads_bytes", "vo_bytes", "client_hashes"),
    )
    queries = queries_with_result_size(systems, "range", 8, config.queries_per_point, seed=1)
    for approach in (ONE_SIGNATURE, MULTI_SIGNATURE):
        handle = systems[approach]
        vo_bytes = 0
        client_hashes = 0
        for query in queries:
            execution = handle.server.execute(query)
            vo_bytes += execution.verification_object.size_bytes(dimension, config.size_model)
            counters = Counters()
            handle.client.verify(
                query, execution.result, execution.verification_object, counters=counters
            )
            client_hashes += counters.hash_operations
        count = len(queries)
        result.add_row(
            approach=approach,
            owner_signatures=handle.signature_count,
            ads_bytes=handle.ads_size_bytes(config.size_model),
            vo_bytes=vo_bytes / count,
            client_hashes=client_hashes / count,
        )
    return result


def ablation_intersection_binding(
    config: Optional[BenchConfig] = None, n_records: int = 20
) -> ExperimentResult:
    """A3: hardened intersection binding vs the paper's exact hash rule."""
    config = config or BenchConfig()
    workload = config.workload(n_records)
    dataset = make_dataset(workload)
    template = make_template(workload)
    result = ExperimentResult(
        experiment_id="ablation-binding",
        title="Intersection binding (hardened) vs paper hash rule",
        parameters={"n": n_records},
        columns=("bind_intersections", "build_seconds", "owner_hashes", "root_hash_prefix"),
    )
    for bind in (True, False):
        counters = Counters()
        started = time.perf_counter()
        tree = IFMHTree(
            dataset,
            template,
            mode=ONE_SIGNATURE,
            signer=None,
            counters=counters,
            bind_intersections=bind,
        )
        elapsed = time.perf_counter() - started
        result.add_row(
            bind_intersections=bind,
            build_seconds=elapsed,
            owner_hashes=counters.hash_operations,
            root_hash_prefix=tree.root_hash.hex()[:12],
        )
    return result


def ablation_mesh_sharing(
    config: Optional[BenchConfig] = None, n_records: int = 20
) -> ExperimentResult:
    """A4: the mesh's shared-signature optimization (signatures and build time)."""
    config = config or BenchConfig()
    workload = config.workload(n_records)
    dataset = make_dataset(workload)
    template = make_template(workload)
    result = ExperimentResult(
        experiment_id="ablation-mesh-sharing",
        title="Signature-mesh sharing optimization",
        parameters={"n": n_records, "algorithm": "hmac"},
        columns=("share_signatures", "signatures", "build_seconds", "cells"),
    )
    from repro.core.owner import DataOwner

    for share in (False, True):
        started = time.perf_counter()
        owner = DataOwner(
            dataset,
            template,
            scheme=SIGNATURE_MESH,
            signature_algorithm="hmac",
            share_signatures=share,
            rng=random.Random(config.seed),
        )
        elapsed = time.perf_counter() - started
        result.add_row(
            share_signatures=share,
            signatures=owner.signature_count,
            build_seconds=elapsed,
            cells=owner.ads.cell_count,
        )
    return result


def security_attack_matrix(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Security analysis (section 4.1): every attack must be detected."""
    config = config or BenchConfig()
    systems = _systems(config, min(config.n_values))
    result = ExperimentResult(
        experiment_id="security",
        title="Attack detection matrix (True = verification rejects the tampered result)",
        parameters={"n": min(config.n_values)},
        columns=("approach", "attack", "violates", "detected"),
    )
    rng = random.Random(config.seed)
    queries = queries_with_result_size(systems, "range", 6, 2, seed=config.seed)
    for handle in systems:
        for attack in all_attacks():
            detected = True
            applied = False
            for query in queries:
                execution = handle.server.execute(query)
                tampered = attack(execution.result, execution.verification_object, rng)
                if tampered is None:
                    continue
                applied = True
                report = handle.client.verify(query, tampered[0], tampered[1])
                if report.is_valid:
                    detected = False
            result.add_row(
                approach=handle.approach,
                attack=attack.name,
                violates=attack.violates,
                detected=detected if applied else "n/a",
            )
    return result


def all_experiments(config: Optional[BenchConfig] = None) -> list[ExperimentResult]:
    """Run every figure and ablation (used by ``python -m repro.bench``)."""
    config = config or BenchConfig()
    return [
        fig5_data_owner(config),
        fig6_server_fixed_result(config, kind="topk"),
        fig6_server_fixed_result(config, kind="knn"),
        fig6_server_fixed_result(config, kind="range"),
        fig6d_result_length(config),
        fig7_user_verification(config),
        fig7c_signature_algorithms(config),
        fig8a_vo_size_vs_result_length(config),
        fig8b_vo_size_vs_database_size(config),
        ablation_geometry_engine(config),
        ablation_signing_modes(config),
        ablation_intersection_binding(config),
        ablation_mesh_sharing(config),
        security_attack_matrix(config),
    ]
