"""Shared machinery for the figure experiments.

The paper compares three approaches -- the signature-mesh baseline and the
two IFMH modes (one-signature, multi-signature) -- on the same workload.
:func:`build_systems` constructs all three for a given scale, and
:class:`SystemsUnderTest` exposes the per-approach handles the experiment
functions iterate over.

Scale note.  The paper runs 1,000-10,000 records on native code; both the
mesh and the IFMH-tree enumerate the ``O(n^2)`` univariate arrangement, so a
pure-Python reproduction sweeps smaller ``n`` (tens to low hundreds) by
default.  Every experiment takes its scale from a :class:`BenchConfig`, so
larger sweeps are one argument away; the qualitative shapes reported in
``EXPERIMENTS.md`` are scale-invariant (they follow from the complexity
analysis in section 4.2 of the paper).  Thousand-record IFMH construction
itself is benchmarked separately by ``python -m repro.bench --scale``
(level-order batched engine, see ``docs/scaling.md``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.client import Client
from repro.core.config import SystemConfig
from repro.core.owner import DataOwner, SIGNATURE_MESH
from repro.core.queries import AnalyticQuery, KNNQuery, RangeQuery, TopKQuery
from repro.core.server import Server
from repro.ifmh.ifmh_tree import MULTI_SIGNATURE, ONE_SIGNATURE
from repro.metrics.sizes import SizeModel
from repro.workloads.generator import (
    WorkloadConfig,
    make_dataset,
    make_template,
    make_weight_vector,
)

__all__ = [
    "APPROACHES",
    "BenchConfig",
    "SystemsUnderTest",
    "ApproachHandle",
    "ExperimentResult",
    "build_systems",
    "queries_with_result_size",
]

#: The three approaches compared throughout the paper's evaluation.
APPROACHES = (SIGNATURE_MESH, ONE_SIGNATURE, MULTI_SIGNATURE)


@dataclass(frozen=True)
class BenchConfig:
    """Scales and crypto settings shared by the experiments.

    The defaults keep a full run of every figure in the low minutes on a
    laptop; pass larger ``n_values`` / ``result_sizes`` to push towards the
    paper's original scale.
    """

    n_values: tuple[int, ...] = (10, 20, 30, 40)
    fixed_n: int = 40
    result_sizes: tuple[int, ...] = (4, 8, 16, 32)
    dimension: int = 1
    seed: int = 0
    queries_per_point: int = 5
    signature_algorithm: str = "rsa"
    key_bits: Optional[int] = 512
    #: The paper's measured mesh signs every consecutive pair per subdomain
    #: (no sharing); keep that configuration for the figures and study the
    #: sharing optimization separately in an ablation.
    mesh_share_signatures: bool = False
    #: IFMH I-tree construction strategy for the figure experiments.  The
    #: figures reproduce the paper, so they default to the paper's
    #: ``"incremental"`` insertion-order tree (the library default elsewhere
    #: is ``"auto"``).  Pass ``"auto"``/``"bulk"`` to measure the vectorized
    #: balanced build instead: identical subdomain partition, but a
    #: shallower tree, so per-query node counts and one-signature VO sizes
    #: come out smaller than the paper's.
    build_mode: str = "incremental"
    #: Size model used for byte-size figures; the 256-byte signature matches
    #: RSA-2048 regardless of the (smaller) benchmarking key.
    size_model: SizeModel = field(default_factory=lambda: SizeModel(signature_size=256))

    def workload(self, n_records: int) -> WorkloadConfig:
        return WorkloadConfig(
            n_records=n_records,
            dimension=self.dimension,
            distribution="uniform",
            seed=self.seed,
        )

    def system_config(
        self,
        approach: str,
        signature_algorithm: Optional[str] = None,
        key_bits: Optional[int] = None,
    ) -> SystemConfig:
        """The build configuration for one approach at this bench's settings."""
        return SystemConfig(
            scheme=approach,
            signature_algorithm=signature_algorithm or self.signature_algorithm,
            key_bits=key_bits if key_bits is not None else self.key_bits,
            share_signatures=self.mesh_share_signatures,
            build_mode=self.build_mode,
        )


@dataclass
class ApproachHandle:
    """One approach instantiated over one workload scale."""

    approach: str
    owner: DataOwner
    server: Server
    client: Client
    build_seconds: float

    @property
    def signature_count(self) -> int:
        return self.owner.signature_count

    def ads_size_bytes(self, size_model: SizeModel) -> int:
        return self.owner.ads.size_bytes(size_model)


@dataclass
class SystemsUnderTest:
    """All three approaches built over the same dataset/template."""

    n_records: int
    dataset: object
    template: object
    handles: Dict[str, ApproachHandle]

    def __getitem__(self, approach: str) -> ApproachHandle:
        return self.handles[approach]

    def __iter__(self):
        return iter(self.handles.values())


def build_systems(
    config: BenchConfig,
    n_records: int,
    approaches: Sequence[str] = APPROACHES,
    signature_algorithm: Optional[str] = None,
    key_bits: Optional[int] = None,
) -> SystemsUnderTest:
    """Build every requested approach over the same generated workload."""
    workload = config.workload(n_records)
    dataset = make_dataset(workload)
    template = make_template(workload)
    keypair_rng = random.Random(config.seed + 12345)

    handles: Dict[str, ApproachHandle] = {}
    for approach in approaches:
        system_config = config.system_config(
            approach, signature_algorithm=signature_algorithm, key_bits=key_bits
        )
        started = time.perf_counter()
        owner = DataOwner(
            dataset,
            template,
            config=system_config,
            rng=random.Random(keypair_rng.random()),
        )
        build_seconds = time.perf_counter() - started
        server = Server(owner.outsource())
        client = Client(owner.public_parameters())
        handles[approach] = ApproachHandle(
            approach=approach,
            owner=owner,
            server=server,
            client=client,
            build_seconds=build_seconds,
        )
    return SystemsUnderTest(
        n_records=n_records, dataset=dataset, template=template, handles=handles
    )


def queries_with_result_size(
    systems: SystemsUnderTest,
    kind: str,
    result_size: int,
    count: int,
    seed: int = 0,
) -> List[AnalyticQuery]:
    """Queries of one kind whose results have exactly ``result_size`` records.

    The scores of the generated dataset are consulted so range boundaries and
    KNN targets land on windows of the requested length -- the paper fixes
    the result length (3 for Fig. 6a-6c, a sweep for Fig. 6d-8a) and measures
    cost as a function of it.
    """
    rng = random.Random(seed)
    template = systems.template
    functions = template.functions_for(systems.dataset)
    result_size = min(result_size, len(functions))
    queries: List[AnalyticQuery] = []
    for _ in range(count):
        weights = make_weight_vector(template, rng)
        scores = sorted(function.evaluate(weights) for function in functions)
        if kind == "topk":
            queries.append(TopKQuery(weights=weights, k=result_size))
        elif kind == "knn":
            anchor = rng.randrange(0, len(scores) - result_size + 1)
            window = scores[anchor : anchor + result_size]
            target = sum(window) / len(window)
            queries.append(KNNQuery(weights=weights, k=result_size, target=target))
        elif kind == "range":
            anchor = rng.randrange(0, len(scores) - result_size + 1)
            low = scores[anchor]
            high = scores[anchor + result_size - 1]
            queries.append(RangeQuery(weights=weights, low=low, high=high))
        else:
            raise ValueError(f"unknown query kind {kind!r}")
    return queries


@dataclass
class ExperimentResult:
    """A figure reproduced as a table."""

    experiment_id: str
    title: str
    parameters: Dict[str, object]
    columns: tuple[str, ...]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        self.rows.append(values)

    def column(self, name: str, where: Optional[Dict[str, object]] = None) -> list:
        """All values of one column, optionally filtered by other columns."""
        selected = []
        for row in self.rows:
            if where and any(row.get(key) != value for key, value in where.items()):
                continue
            selected.append(row[name])
        return selected

    def series(self, key_column: str, value_column: str, approach: str) -> Dict[object, object]:
        """``{x: y}`` series for one approach (used by shape assertions)."""
        return {
            row[key_column]: row[value_column]
            for row in self.rows
            if row.get("approach") == approach
        }
