"""Churn/recovery benchmark (``--churn``): the crash-safe update pipeline gate.

Three phases, one per durability claim:

1. **Crash recovery** -- the differential harness
   (:mod:`repro.resilience.recovery`) crashes the owner's update pipeline
   at *every* step (mid journal append, post-append, post-apply, during
   publish), recovers with :meth:`repro.core.owner.DataOwner.recover`, and
   requires the recovered owner bit-identical (roots, verification
   objects, both hash counters) to an uninterrupted reference run at every
   single crash point.

2. **Serving churn** -- a replica pool serves a ~95/5 read/update workload
   while the owner journals, applies and delta-publishes update batches
   and the pool performs **rolling hot-swaps** to each new epoch.  One
   replica "crashes during upgrade" and keeps serving a stale epoch; the
   verifying front-end must reject every one of its answers once clients
   hold the new parameters (zero stale answers accepted post-swap), the
   pool must self-heal it via :meth:`~repro.resilience.pool.ReplicaPool.resync`
   (it must serve verified answers again after half-open probation), and
   goodput must clear its floor through all of it.  The phase runs on the
   virtual clock with seeded rngs and is replayed to prove determinism.

3. **In-flight safety** -- reader threads hammer one live
   :class:`~repro.core.server.Server` while the main thread hot-swaps it
   through every published epoch.  Zero queries may be dropped and every
   answer must verify against the epoch it was served at: a swap is never
   allowed to tear a query in flight.

``python -m repro.bench --churn`` runs the full workload and writes
``BENCH_churn.json``; ``--churn --smoke`` is the reduced CI gate (writes
``BENCH_churn_smoke.json``).
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import threading
from typing import Dict, List, Optional, Tuple

from repro.bench.harness import ExperimentResult
from repro.core.client import Client
from repro.core.config import SystemConfig
from repro.core.owner import DataOwner
from repro.core.records import Record
from repro.core.server import Server
from repro.crypto.signer import make_signer
from repro.resilience.policy import RetryPolicy, VirtualClock
from repro.resilience.pool import ReplicaPool, ResilientClient
from repro.resilience.recovery import UpdateBatch, run_crash_matrix
from repro.workloads.generator import (
    WorkloadConfig,
    make_dataset,
    make_queries,
    make_template,
)

__all__ = [
    "CHURN_POOL_SIZE",
    "CHURN_GOODPUT_FLOOR",
    "CHURN_N_RECORDS",
    "CHURN_SWAP_ROUNDS",
    "CHURN_REPORT_FILENAME",
    "SMOKE_CHURN_N_RECORDS",
    "SMOKE_CHURN_SWAP_ROUNDS",
    "SMOKE_CHURN_REPORT_FILENAME",
    "run_churn",
    "run_churn_smoke",
]

#: Replica count of the serving pool.
CHURN_POOL_SIZE = 5
#: Fraction of issued queries that must end with an accepted (verified)
#: answer despite rolling swaps and the stale laggard.
CHURN_GOODPUT_FLOOR = 0.9

#: Full-run shape: database size, swap rounds and reads per segment.
CHURN_N_RECORDS = 180
CHURN_SWAP_ROUNDS = 6
CHURN_READS_PER_ROUND = 16
#: Where ``python -m repro.bench --churn`` records its outcome.
CHURN_REPORT_FILENAME = "BENCH_churn.json"

#: Reduced shape used by ``--churn --smoke`` (CI).
SMOKE_CHURN_N_RECORDS = 72
SMOKE_CHURN_SWAP_ROUNDS = 3
SMOKE_CHURN_READS_PER_ROUND = 8
SMOKE_CHURN_REPORT_FILENAME = "BENCH_churn_smoke.json"

#: Reads interleaved between consecutive replica swaps of one rolling swap.
INTERLEAVE_READS = 2
#: Threaded phase: reader threads and queries per thread (full / smoke).
THREAD_READERS = 4
THREAD_QUERIES = 30
SMOKE_THREAD_READERS = 2
SMOKE_THREAD_QUERIES = 12


def _build_setup(n_records: int, seed: int, directory: str) -> Dict[str, object]:
    """Owner-side setup: build the epoch-0 ADS and publish its artifact."""
    workload = WorkloadConfig(n_records=n_records, dimension=1, seed=seed)
    dataset = make_dataset(workload)
    template = make_template(workload)
    config = SystemConfig(scheme="one-signature", signature_algorithm="hmac")
    keypair = make_signer("hmac", rng=random.Random(seed + 99))
    owner = DataOwner(dataset, template, config=config, keypair=keypair)
    base_path = os.path.join(directory, "ads-epoch0.npz")
    owner.publish(base_path)
    return {
        "dataset": dataset,
        "template": template,
        "keypair": keypair,
        "base_path": base_path,
        "value_range": workload.value_range,
    }


def _make_batches(
    n_records: int, rounds: int, seed: int, value_range: Tuple[float, float]
) -> List[UpdateBatch]:
    """One deterministic update batch per swap round.

    Round ``r`` inserts a fresh record and (from round 1 on) deletes the
    record inserted in round ``r - 1``, so every batch is valid no matter
    where a crash-recovery replay restarts.
    """
    rng = random.Random(seed + 17)
    low, high = value_range
    batches: List[UpdateBatch] = []
    for index in range(rounds):
        record = Record(
            record_id=n_records + index,
            values=(rng.uniform(low, high), rng.uniform(low, high)),
            label=f"churn-{index}",
        )
        deletes = (n_records + index - 1,) if index else ()
        batches.append(UpdateBatch(inserts=(record,), deletes=deletes))
    return batches


# --------------------------------------------------------------- phase 1
def _crash_phase(
    setup: Dict[str, object],
    batches: List[UpdateBatch],
    queries,
    directory: str,
) -> Dict[str, object]:
    """Differential crash matrix over the full update pipeline."""
    reference, outcomes = run_crash_matrix(
        setup["base_path"],
        keypair=setup["keypair"],
        batches=batches,
        queries=queries,
        workdir=os.path.join(directory, "crash-matrix"),
    )
    return {
        "crash_points": len(outcomes),
        "identical": sum(1 for outcome in outcomes if outcome.identical),
        "mismatched": {
            outcome.crash.label: list(outcome.mismatched_fields)
            for outcome in outcomes
            if not outcome.identical
        },
        "torn_tails_discarded": sum(
            1 for outcome in outcomes if outcome.torn_tail_discarded
        ),
        "replayed_batches": [outcome.replayed_batches for outcome in outcomes],
        "reference_epoch": reference["epoch"],
    }


# --------------------------------------------------------------- phase 2
def _serve_segment(resilient, pool, queries, stats, *, post_swap_epoch=None):
    """Run one read segment, folding per-query outcomes into ``stats``.

    With ``post_swap_epoch`` set, the serving clients hold that epoch's
    parameters: an accepted answer from a replica at any *other* epoch is
    a stale answer slipping through verification and increments the
    ``stale_accepted`` gate counter.
    """
    for query in queries:
        outcome = resilient.execute(query)
        stats["issued"] += 1
        stats["attempts"] += len(outcome.attempts)
        if outcome.accepted:
            stats["accepted"] += 1
            if outcome.degraded:
                stats["degraded"] += 1
            if post_swap_epoch is not None:
                replica_epoch = pool.handle(outcome.replica_id).epoch
                if replica_epoch != post_swap_epoch:
                    stats["stale_accepted"] += 1
                stats["served_post_swap"][outcome.replica_id] = (
                    stats["served_post_swap"].get(outcome.replica_id, 0) + 1
                )
        else:
            stats["exhausted"] += 1


def _churn_serve(
    setup: Dict[str, object],
    batches: List[UpdateBatch],
    queries,
    reads_per_round: int,
    seed: int,
    directory: str,
) -> Dict[str, object]:
    """The rolling-swap serving phase (virtual-clocked, fully seeded).

    Rebuilds everything -- owner, journal, pool, clients -- from the
    epoch-0 artifact, so a same-seed re-run must reproduce the returned
    outcome dict bit for bit.
    """
    base_path = setup["base_path"]
    clock = VirtualClock()
    pool = ReplicaPool(
        [Server.from_artifact(base_path) for _ in range(CHURN_POOL_SIZE)],
        clock=clock,
        quarantine_threshold=2,
        quarantine_period=0.5,
    )
    laggard_id = CHURN_POOL_SIZE - 1
    owner = DataOwner.from_artifact(base_path, keypair=setup["keypair"])
    owner.enable_journal(os.path.join(directory, "updates.journal"))

    stats: Dict[str, object] = {
        "issued": 0,
        "accepted": 0,
        "degraded": 0,
        "exhausted": 0,
        "attempts": 0,
        "stale_accepted": 0,
        "served_post_swap": {},
        "updates": 0,
        "publishes": [],
        "resync_modes": [],
        "laggard_rejections": 0,
        "laggard_served_after_resync": 0,
    }
    query_cursor = 0

    def take(count):
        nonlocal query_cursor
        taken = [queries[(query_cursor + i) % len(queries)] for i in range(count)]
        query_cursor += count
        return taken

    def fresh_client(path, round_seed):
        return ResilientClient(
            pool, Client.from_artifact(path), RetryPolicy(), seed=round_seed
        )

    resilient = fresh_client(base_path, seed)
    latest_path = base_path
    for round_index, batch in enumerate(batches):
        final_round = round_index == len(batches) - 1
        # Steady-state reads at the current epoch.
        _serve_segment(
            resilient, pool, take(reads_per_round), stats,
            post_swap_epoch=owner.epoch,
        )
        # The 5% side of the workload: journal + apply + delta-publish.
        owner.apply_updates(inserts=batch.inserts, deletes=batch.deletes)
        stats["updates"] += 1
        latest_path = os.path.join(directory, f"ads-epoch{owner.epoch}.npz")
        publish = owner.publish(latest_path, base=base_path)
        stats["publishes"].append(publish.mode)
        # Rolling swap: replicas move one at a time while clients still
        # holding the old parameters keep being served by the laggards.
        swap_ids = [
            replica_id
            for replica_id in pool.stale_replicas(owner.epoch)
            if not (final_round and replica_id == laggard_id)
        ]
        for position, replica_id in enumerate(swap_ids):
            report = pool.resync(
                replica_id, latest_path, base=base_path, expected_epoch=owner.epoch
            )
            stats["resync_modes"].append(report.mode)
            if position < len(swap_ids) - 1:
                _serve_segment(resilient, pool, take(INTERLEAVE_READS), stats)
        # Clients learn the new parameters; replicas quarantined by
        # old-parameter traffic mid-swap resync (mode "refresh") and rejoin
        # through half-open probation.
        resilient = fresh_client(latest_path, seed + 100 + round_index)
        for entry in pool.status():
            if (
                entry["quarantined"]
                and pool.handle(entry["replica_id"]).epoch == owner.epoch
            ):
                report = pool.resync(
                    entry["replica_id"],
                    latest_path,
                    base=base_path,
                    expected_epoch=owner.epoch,
                )
                stats["resync_modes"].append(report.mode)
        faults_before = pool.handle(laggard_id).faults
        _serve_segment(
            resilient, pool, take(reads_per_round), stats,
            post_swap_epoch=owner.epoch,
        )
        stats["laggard_rejections"] += pool.handle(laggard_id).faults - faults_before

    # Self-healing: the laggard (it "crashed during upgrade" and still
    # serves the previous epoch) resyncs from the newest artifact and must
    # serve verified answers again after its half-open probation.
    heal = pool.resync(
        laggard_id, latest_path, base=base_path, expected_epoch=owner.epoch
    )
    stats["resync_modes"].append(heal.mode)
    stats["laggard_rejoined_as_probe"] = heal.rejoined_as_probe
    served_before = pool.handle(laggard_id).served
    _serve_segment(
        resilient, pool, take(3 * CHURN_POOL_SIZE), stats,
        post_swap_epoch=owner.epoch,
    )
    stats["laggard_served_after_resync"] = (
        pool.handle(laggard_id).served - served_before
    )

    # The journal end-to-end: recovering from the epoch-0 artifact must
    # land exactly on the live owner's state.
    recovered = DataOwner.recover(owner.journal, base_path, keypair=setup["keypair"])
    stats["journal_recovery_matches"] = bool(
        recovered.epoch == owner.epoch
        and recovered.ads.root_hash == owner.ads.root_hash
        and recovered.ads.root_signature == owner.ads.root_signature
    )
    stats["goodput"] = stats["accepted"] / stats["issued"]
    stats["read_fraction"] = stats["issued"] / (stats["issued"] + stats["updates"])
    stats["final_epoch"] = owner.epoch
    stats["virtual_seconds"] = clock.now()
    stats["pool_status"] = pool.status()
    return stats


# --------------------------------------------------------------- phase 3
def _threaded_swap_phase(
    setup: Dict[str, object],
    epoch_paths: List[Tuple[int, str]],
    queries,
    readers: int,
    queries_per_reader: int,
) -> Dict[str, object]:
    """Reader threads race a live hot-swapping server.

    Every issued query must complete and verify against the epoch that
    served it; the swap itself must never produce an exception, a dropped
    query or an answer that verifies against no published epoch.
    """
    base_path = setup["base_path"]
    server = Server.from_artifact(base_path)
    clients = {0: Client.from_artifact(base_path)}
    for epoch, path in epoch_paths:
        clients[epoch] = Client.from_artifact(path)

    results: List[List[Tuple[object, object]]] = [[] for _ in range(readers)]
    errors: List[str] = []
    start = threading.Barrier(readers + 1)

    def reader(slot: int) -> None:
        rng = random.Random(9000 + slot)
        start.wait()
        for _ in range(queries_per_reader):
            query = queries[rng.randrange(len(queries))]
            try:
                results[slot].append((query, server.execute(query)))
            except Exception as error:  # reprolint: disable=RL008 -- the gate is "no exceptions at all": every error is recorded and fails the bench
                errors.append(f"reader {slot}: {type(error).__name__}: {error}")

    threads = [
        threading.Thread(target=reader, args=(slot,)) for slot in range(readers)
    ]
    for thread in threads:
        thread.start()
    start.wait()
    swapped = []
    for epoch, path in epoch_paths:
        swapped.append(
            server.swap_epoch_from_artifact(
                path, base=base_path, expected_epoch=epoch
            ).new_epoch
        )
    for thread in threads:
        thread.join()

    issued = readers * queries_per_reader
    completed = sum(len(slot_results) for slot_results in results)
    unverified = 0
    for slot_results in results:
        for query, execution in slot_results:
            # Epoch binding makes the check sharp: the answer verifies
            # against exactly the epoch that served it, so "valid under
            # some published epoch" means the query was never torn.
            if not any(
                client.verify(
                    query, execution.result, execution.verification_object
                ).is_valid
                for client in clients.values()
            ):
                unverified += 1
    return {
        "readers": readers,
        "issued": issued,
        "completed": completed,
        "dropped": issued - completed,
        "errors": errors,
        "unverified": unverified,
        "epochs_swapped": swapped,
        "epochs_served": server.epochs_served,
    }


# ----------------------------------------------------------------- driver
def run_churn(
    n_records: int = CHURN_N_RECORDS,
    swap_rounds: int = CHURN_SWAP_ROUNDS,
    reads_per_round: int = CHURN_READS_PER_ROUND,
    seed: int = 0,
    goodput_floor: float = CHURN_GOODPUT_FLOOR,
    output_path: Optional[str] = CHURN_REPORT_FILENAME,
    readers: int = THREAD_READERS,
    queries_per_reader: int = THREAD_QUERIES,
) -> Tuple[List[ExperimentResult], List[str]]:
    """Run the churn/recovery benchmark and gate the durability claims.

    Returns ``(results, failures)``; an empty failure list means crash
    recovery was bit-identical at every pipeline crash point, zero stale
    answers were accepted once clients held post-swap parameters, the
    resynced laggard served verified answers again, the threaded hot-swap
    dropped zero in-flight queries, goodput cleared ``goodput_floor`` and
    the serving phase replayed deterministically under the same seed.
    When ``output_path`` is set the outcome is written there as JSON.
    """
    with tempfile.TemporaryDirectory(prefix="repro-churn-") as directory:
        setup = _build_setup(n_records, seed, directory)
        batches = _make_batches(n_records, swap_rounds, seed, setup["value_range"])
        queries = make_queries(
            setup["dataset"], setup["template"], count=24, seed=seed + 3
        )
        crash = _crash_phase(setup, batches, queries[:6], directory)
        churn_dir = os.path.join(directory, "churn")
        replay_dir = os.path.join(directory, "churn-replay")
        os.makedirs(churn_dir)
        os.makedirs(replay_dir)
        churn = _churn_serve(
            setup, batches, queries, reads_per_round, seed, churn_dir
        )
        replay = _churn_serve(
            setup, batches, queries, reads_per_round, seed, replay_dir
        )
        epoch_paths = [
            (epoch, os.path.join(churn_dir, f"ads-epoch{epoch}.npz"))
            for epoch in range(1, swap_rounds + 1)
        ]
        threaded = _threaded_swap_phase(
            setup, epoch_paths, queries, readers, queries_per_reader
        )

        deterministic = churn == replay
        failures: List[str] = []
        if crash["identical"] != crash["crash_points"]:
            failures.append(
                "crash recovery diverged from the uninterrupted reference at "
                + ", ".join(sorted(crash["mismatched"]))
                + "; recovery must be bit-identical at every crash point"
            )
        if not crash["torn_tails_discarded"]:
            failures.append(
                "no torn journal tail was exercised; the crash matrix must "
                "cover mid-append crashes"
            )
        if churn["stale_accepted"]:
            failures.append(
                f"{churn['stale_accepted']} answers from stale-epoch replicas "
                "were accepted after a completed swap; epoch binding must "
                "reject every one"
            )
        if not churn["laggard_rejections"]:
            failures.append(
                "the stale laggard was never even tried post-swap; the churn "
                "phase did not exercise stale rejection"
            )
        if not churn["laggard_served_after_resync"]:
            failures.append(
                "the resynced laggard never served a verified answer; pool "
                "self-healing through half-open probation failed"
            )
        if not churn["journal_recovery_matches"]:
            failures.append(
                "recovering the serving phase's journal from the epoch-0 "
                "artifact did not reproduce the live owner's state"
            )
        if churn["goodput"] < goodput_floor:
            failures.append(
                f"goodput {churn['goodput']:.3f} is below the floor "
                f"{goodput_floor:.2f}; rolling swaps must not starve readers"
            )
        if threaded["dropped"] or threaded["errors"]:
            failures.append(
                f"{threaded['dropped']} in-flight queries dropped and "
                f"{len(threaded['errors'])} raised during live hot-swap; "
                "a swap must never tear a query"
            )
        if threaded["unverified"]:
            failures.append(
                f"{threaded['unverified']} answers produced during live "
                "hot-swap verify against no published epoch"
            )
        if not deterministic:
            diff = [key for key in churn if churn[key] != replay[key]]
            failures.append(
                "same-seed replay of the serving phase diverged on "
                f"({', '.join(sorted(diff))}); the harness must be free of "
                "wall-clock randomness"
            )

    result = ExperimentResult(
        experiment_id="churn-recovery",
        title="Crash-safe updates under serving churn and rolling swaps",
        parameters={
            "seed": seed,
            "n": n_records,
            "pool": CHURN_POOL_SIZE,
            "rounds": swap_rounds,
            "floor": goodput_floor,
        },
        columns=(
            "crash_points",
            "crash_identical",
            "issued",
            "accepted",
            "goodput",
            "stale_accepted",
            "resyncs",
            "laggard_served",
            "thread_issued",
            "thread_dropped",
        ),
    )
    result.add_row(
        crash_points=crash["crash_points"],
        crash_identical=crash["identical"],
        issued=churn["issued"],
        accepted=churn["accepted"],
        goodput=churn["goodput"],
        stale_accepted=churn["stale_accepted"],
        resyncs=len(churn["resync_modes"]),
        laggard_served=churn["laggard_served_after_resync"],
        thread_issued=threaded["issued"],
        thread_dropped=threaded["dropped"],
    )

    if output_path is not None:
        payload = {
            "benchmark": "churn-recovery",
            "seed": seed,
            "n": n_records,
            "pool_size": CHURN_POOL_SIZE,
            "swap_rounds": swap_rounds,
            "goodput_floor": goodput_floor,
            "deterministic": deterministic,
            "crash_phase": crash,
            "churn_phase": churn,
            "threaded_phase": threaded,
        }
        with open(output_path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
    return [result], failures


def run_churn_smoke(
    seed: int = 0, output_path: Optional[str] = SMOKE_CHURN_REPORT_FILENAME
) -> Tuple[List[ExperimentResult], List[str]]:
    """Reduced churn/recovery gate for CI (same code path and gates)."""
    return run_churn(
        n_records=SMOKE_CHURN_N_RECORDS,
        swap_rounds=SMOKE_CHURN_SWAP_ROUNDS,
        reads_per_round=SMOKE_CHURN_READS_PER_ROUND,
        seed=seed,
        goodput_floor=CHURN_GOODPUT_FLOOR,
        output_path=output_path,
        readers=SMOKE_THREAD_READERS,
        queries_per_reader=SMOKE_THREAD_QUERIES,
    )
