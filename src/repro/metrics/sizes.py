"""Byte-size accounting for ADS structures and verification objects.

Fig. 5c (structure size) and Fig. 8 (VO size) report sizes in bytes.  To
keep those figures independent of Python object overhead, sizes are computed
from a :class:`SizeModel` describing the wire format: how many bytes a hash,
a signature, a record, a pointer and a float occupy.  The defaults follow
the paper's setup (SHA-256 digests, RSA signatures, IEEE-754 doubles).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SizeModel", "DEFAULT_SIZE_MODEL"]


@dataclass(frozen=True)
class SizeModel:
    """Sizes (in bytes) of the primitive components of the wire format.

    Attributes
    ----------
    hash_size:
        One digest (SHA-256: 32 bytes).
    signature_size:
        One signature.  The paper quotes 640 bytes for its RSA deployment;
        our from-scratch RSA-2048 signatures are 256 bytes.  The benchmark
        harness sets this from the actual signer in use.
    float_size:
        One numeric attribute / coefficient (IEEE-754 double: 8 bytes).
    int_size:
        One integer identifier or counter.
    pointer_size:
        One structural reference inside a serialized tree.
    """

    hash_size: int = 32
    signature_size: int = 256
    float_size: int = 8
    int_size: int = 8
    pointer_size: int = 8

    # ------------------------------------------------------------ records
    def record_size(self, dimension: int) -> int:
        """Size of one serialized record: id + ``dimension`` attributes."""
        return self.int_size + dimension * self.float_size

    def function_size(self, dimension: int) -> int:
        """Size of one serialized score function (coefficients + constant)."""
        return self.int_size + (dimension + 1) * self.float_size

    def hyperplane_size(self, dimension: int) -> int:
        """Size of one intersection hyperplane (difference coefficients)."""
        return 2 * self.int_size + (dimension + 1) * self.float_size

    def constraint_size(self, dimension: int) -> int:
        """Size of one signed half-space constraint describing a subdomain."""
        return self.hyperplane_size(dimension) + self.int_size

    def with_signature_size(self, signature_size: int) -> "SizeModel":
        """Return a copy of the model with a different signature size."""
        return SizeModel(
            hash_size=self.hash_size,
            signature_size=signature_size,
            float_size=self.float_size,
            int_size=self.int_size,
            pointer_size=self.pointer_size,
        )


#: Default size model used when the caller does not supply one.
DEFAULT_SIZE_MODEL = SizeModel()
