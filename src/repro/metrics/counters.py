"""Operation counters shared by owner, server and client code paths.

A single :class:`Counters` object is threaded through ADS construction,
query processing, verification-object construction and client verification.
Each counter corresponds to a quantity reported in the paper's evaluation:

* ``nodes_traversed`` -- IFMH-tree nodes or signature-mesh cells visited by
  the server while processing a query and building its VO (Fig. 6).
* ``hash_operations`` -- *logical* one-way hash operations (Fig. 7a/7b):
  every hash the algorithm performs, including those the shared-structure
  construction engine serves from a cache.
* ``physical_hash_operations`` -- SHA-256 invocations that actually ran
  (never larger than ``hash_operations``; the construction benchmark gates
  its speedup on the gap between the two).
* ``signatures_created`` -- signatures produced by the data owner (Fig. 5a).
* ``signatures_verified`` -- signatures checked by the client (Fig. 7c/7d).
* ``comparisons`` -- score comparisons, useful for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["Counters"]


@dataclass
class Counters:
    """Mutable bundle of operation counters.

    The individual ``add_*`` methods are deliberately tiny so they can be
    called from inner loops without measurable overhead.
    """

    nodes_traversed: int = 0
    hash_operations: int = 0
    physical_hash_operations: int = 0
    signatures_created: int = 0
    signatures_verified: int = 0
    comparisons: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------- updates
    def add_node(self, count: int = 1) -> None:
        self.nodes_traversed += count

    def add_hash(self, count: int = 1) -> None:
        self.hash_operations += count

    def add_physical_hash(self, count: int = 1) -> None:
        self.physical_hash_operations += count

    def add_signature_created(self, count: int = 1) -> None:
        self.signatures_created += count

    def add_signature_verified(self, count: int = 1) -> None:
        self.signatures_verified += count

    def add_comparison(self, count: int = 1) -> None:
        self.comparisons += count

    def add_extra(self, name: str, count: int = 1) -> None:
        """Increment a named ad-hoc counter (used by ablation experiments)."""
        self.extra[name] = self.extra.get(name, 0) + count

    # ------------------------------------------------------------ plumbing
    def reset(self) -> None:
        """Zero every counter in place."""
        self.nodes_traversed = 0
        self.hash_operations = 0
        self.physical_hash_operations = 0
        self.signatures_created = 0
        self.signatures_verified = 0
        self.comparisons = 0
        self.extra.clear()

    def snapshot(self) -> Dict[str, int]:
        """Return a plain-dict copy of all counters (for reporting)."""
        data = {
            "nodes_traversed": self.nodes_traversed,
            "hash_operations": self.hash_operations,
            "physical_hash_operations": self.physical_hash_operations,
            "signatures_created": self.signatures_created,
            "signatures_verified": self.signatures_verified,
            "comparisons": self.comparisons,
        }
        data.update(self.extra)
        return data

    def merge(self, other: "Counters") -> None:
        """Add every counter of ``other`` into this instance."""
        self.nodes_traversed += other.nodes_traversed
        self.hash_operations += other.hash_operations
        self.physical_hash_operations += other.physical_hash_operations
        self.signatures_created += other.signatures_created
        self.signatures_verified += other.signatures_verified
        self.comparisons += other.comparisons
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value

    def __sub__(self, other: "Counters") -> "Counters":
        """Difference of two snapshots (``after - before``)."""
        diff = Counters(
            nodes_traversed=self.nodes_traversed - other.nodes_traversed,
            hash_operations=self.hash_operations - other.hash_operations,
            physical_hash_operations=self.physical_hash_operations
            - other.physical_hash_operations,
            signatures_created=self.signatures_created - other.signatures_created,
            signatures_verified=self.signatures_verified - other.signatures_verified,
            comparisons=self.comparisons - other.comparisons,
        )
        keys = set(self.extra) | set(other.extra)
        diff.extra = {k: self.extra.get(k, 0) - other.extra.get(k, 0) for k in keys}
        return diff

    def copy(self) -> "Counters":
        """Return an independent copy of the current counter values."""
        clone = Counters(
            nodes_traversed=self.nodes_traversed,
            hash_operations=self.hash_operations,
            physical_hash_operations=self.physical_hash_operations,
            signatures_created=self.signatures_created,
            signatures_verified=self.signatures_verified,
            comparisons=self.comparisons,
        )
        clone.extra = dict(self.extra)
        return clone
