"""Instrumentation: operation counters, byte-size accounting and timers.

The paper's evaluation reports *counts* (traversed nodes/cells, hashing
operations, signatures) and *times* (construction, verification).  Every
data-structure operation in this reproduction is routed through a
:class:`Counters` instance so the benchmark harness reports exact counts
instead of estimates.
"""

from repro.metrics.counters import Counters
from repro.metrics.sizes import SizeModel, DEFAULT_SIZE_MODEL
from repro.metrics.timing import Stopwatch, timed

__all__ = ["Counters", "SizeModel", "DEFAULT_SIZE_MODEL", "Stopwatch", "timed"]
