"""Wall-clock timing helpers used by the benchmark harness and serving tier.

:class:`Stopwatch`/:func:`timed` accumulate named durations for the figure
experiments; :func:`percentile` and :class:`LatencySummary` are the shared
percentile machinery behind the serving tier's latency recorder
(``repro.serving.recorder``) and the ``--serve`` bench gate.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Sequence

__all__ = ["Stopwatch", "timed", "percentile", "LatencySummary"]


@dataclass
class Stopwatch:
    """Accumulates named wall-clock durations.

    Used by the benchmark harness to separate, e.g., hashing time from
    signature-verification time inside a single verification call (Fig. 7b
    versus Fig. 7c in the paper).
    """

    durations: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed time to ``durations[name]``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[name] = self.durations.get(name, 0.0) + elapsed

    def total(self) -> float:
        """Sum of all recorded durations."""
        return sum(self.durations.values())

    def get(self, name: str) -> float:
        """Duration recorded under ``name`` (0.0 when absent)."""
        return self.durations.get(name, 0.0)

    def reset(self) -> None:
        self.durations.clear()


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100]).

    Nearest-rank (rather than interpolation) keeps the reported value an
    actually-observed latency, which is what a tail-latency gate should
    bound; raises ``ValueError`` on an empty sample set.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set is undefined")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile rank must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if q == 0.0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without float error
    return ordered[int(rank) - 1]


@dataclass(frozen=True)
class LatencySummary:
    """p50/p95/p99/max/mean of one latency sample set (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        return cls(
            count=len(samples),
            mean=sum(samples) / len(samples),
            p50=percentile(samples, 50.0),
            p95=percentile(samples, 95.0),
            p99=percentile(samples, 99.0),
            max=max(samples),
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


@contextmanager
def timed() -> Iterator[list[float]]:
    """Context manager yielding a one-element list holding the elapsed time.

    >>> with timed() as t:
    ...     _ = sum(range(10))
    >>> t[0] >= 0.0
    True
    """
    result = [0.0]
    start = time.perf_counter()
    try:
        yield result
    finally:
        result[0] = time.perf_counter() - start
