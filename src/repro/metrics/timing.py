"""Small wall-clock timing helpers used by the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["Stopwatch", "timed"]


@dataclass
class Stopwatch:
    """Accumulates named wall-clock durations.

    Used by the benchmark harness to separate, e.g., hashing time from
    signature-verification time inside a single verification call (Fig. 7b
    versus Fig. 7c in the paper).
    """

    durations: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed time to ``durations[name]``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[name] = self.durations.get(name, 0.0) + elapsed

    def total(self) -> float:
        """Sum of all recorded durations."""
        return sum(self.durations.values())

    def get(self, name: str) -> float:
        """Duration recorded under ``name`` (0.0 when absent)."""
        return self.durations.get(name, 0.0)

    def reset(self) -> None:
        self.durations.clear()


@contextmanager
def timed() -> Iterator[list[float]]:
    """Context manager yielding a one-element list holding the elapsed time.

    >>> with timed() as t:
    ...     _ = sum(range(10))
    >>> t[0] >= 0.0
    True
    """
    result = [0.0]
    start = time.perf_counter()
    try:
        yield result
    finally:
        result[0] = time.perf_counter() - start
