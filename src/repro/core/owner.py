"""The data owner: key generation, ADS construction and outsourcing.

The data owner holds the only private key in the system.  It builds the
authenticated data structure for its chosen scheme (one-signature IFMH,
multi-signature IFMH or the signature-mesh baseline), packages the database
plus the ADS for the cloud server, and publishes the public parameters
(template, schema, public key, scheme configuration) that any data user
needs in order to verify query results.

Construction is configured by one :class:`repro.core.config.SystemConfig`
object threaded through every layer; the legacy per-kwarg interface is kept
as a thin shim on top of it.  :meth:`DataOwner.publish` writes the finished
ADS to disk as a versioned artifact (:mod:`repro.core.artifact`) from which
:meth:`repro.core.server.Server.from_artifact` cold-starts without
rebuilding or re-hashing anything.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.core.config import SCHEMES, SIGNATURE_MESH, SystemConfig, resolve_config
from repro.core.records import Dataset, UtilityTemplate
from repro.crypto.hashing import HashFunction
from repro.crypto.serialization import verifier_from_payload, verifier_to_payload
from repro.crypto.signer import KeyPair, Verifier, make_signer
from repro.geometry.domain import Domain
from repro.geometry.engine import SplitEngine
from repro.ifmh.ifmh_tree import IFMHTree
from repro.mesh.builder import SignatureMesh
from repro.metrics.counters import Counters
from repro.metrics.sizes import DEFAULT_SIZE_MODEL, SizeModel

__all__ = [
    "SIGNATURE_MESH",
    "SCHEMES",
    "PublicParameters",
    "ServerPackage",
    "DataOwner",
]


@dataclass(frozen=True)
class PublicParameters:
    """Everything a data user needs to verify query results.

    This is public information: the utility-function template (with its
    weight domain), the table schema, the scheme configuration and the data
    owner's *public* verification key.
    """

    template: UtilityTemplate
    attribute_names: tuple[str, ...]
    scheme: str
    signature_algorithm: str
    verifier: Verifier
    bind_intersections: bool = True

    # ---------------------------------------------------------- dict codec
    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe form of the public parameters (artifact header)."""
        template = self.template
        return {
            "template": {
                "attributes": list(template.attributes),
                "domain_lower": list(template.domain.lower),
                "domain_upper": list(template.domain.upper),
                "constant_attribute": template.constant_attribute,
            },
            "attribute_names": list(self.attribute_names),
            "scheme": self.scheme,
            "signature_algorithm": self.signature_algorithm,
            "verifier": verifier_to_payload(self.verifier),
            "bind_intersections": bool(self.bind_intersections),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "PublicParameters":
        """Rebuild public parameters from :meth:`to_payload` output."""
        template_data = payload["template"]
        template = UtilityTemplate(
            attributes=tuple(template_data["attributes"]),
            domain=Domain(
                lower=tuple(template_data["domain_lower"]),
                upper=tuple(template_data["domain_upper"]),
            ),
            constant_attribute=template_data["constant_attribute"],
        )
        return cls(
            template=template,
            attribute_names=tuple(payload["attribute_names"]),
            scheme=payload["scheme"],
            signature_algorithm=payload["signature_algorithm"],
            verifier=verifier_from_payload(payload["verifier"]),
            bind_intersections=bool(payload["bind_intersections"]),
        )


@dataclass(frozen=True)
class ServerPackage:
    """What the data owner uploads to the cloud server.

    Frozen: the package is a hand-off between trust domains, and nothing
    downstream may swap its dataset, ADS or public parameters in place.
    """

    dataset: Dataset
    ads: Union[IFMHTree, SignatureMesh]
    public_parameters: PublicParameters


class DataOwner:
    """The data owner of the three-party outsourcing model.

    Parameters
    ----------
    dataset / template:
        The table to outsource and its published utility-function template.
    config:
        A :class:`repro.core.config.SystemConfig` bundling the scheme and
        every build switch.  The remaining keyword arguments are the legacy
        per-field interface: passed without a config they build one; passed
        *with* a config they override the corresponding fields.
    scheme:
        ``"one-signature"``, ``"multi-signature"`` or ``"signature-mesh"``.
    signature_algorithm:
        ``"rsa"`` (default), ``"dsa"`` or ``"hmac"`` (test-only).
    key_bits:
        Key-size override passed to the signature scheme.
    bind_intersections:
        IFMH hardening switch (see :class:`repro.ifmh.IFMHTree`).
    share_signatures:
        Mesh-only: enable the shared-signature optimization.
    build_mode:
        IFMH-only: I-tree construction strategy (``"auto"`` uses the
        vectorized bulk build for the univariate interval configuration and
        the paper's incremental insertion otherwise).
    hash_consing:
        IFMH-only: route FMH construction through the shared-structure
        Merkle engine (interned leaf digests + hash-consed internal nodes).
        On by default; every hash value and logical counter is bit-identical
        either way, only the physical SHA-256 work drops.
    batch_hashing:
        IFMH-only: advance the shared-structure construction level by
        level across all subdomain trees at once (array-backed arena +
        bulk hashing).  On by default; bit-identical to the node-at-a-time
        engine, only faster.  Requires ``hash_consing``.
    tolerance:
        Geometry-engine tolerance (``None`` = engine default; an explicit
        ``0.0`` is honoured).
    engine:
        Geometry engine override (takes precedence over ``tolerance``).
    rng:
        Seeded random source for reproducible key generation.
    """

    def __init__(
        self,
        dataset: Dataset,
        template: UtilityTemplate,
        *,
        config: Optional[SystemConfig] = None,
        scheme: Optional[str] = None,
        signature_algorithm: Optional[str] = None,
        key_bits: Optional[int] = None,
        bind_intersections: Optional[bool] = None,
        share_signatures: Optional[bool] = None,
        build_mode: Optional[str] = None,
        hash_consing: Optional[bool] = None,
        batch_hashing: Optional[bool] = None,
        tolerance: Optional[float] = None,
        engine: Optional[SplitEngine] = None,
        rng: Optional[random.Random] = None,
        counters: Optional[Counters] = None,
        keypair: Optional[KeyPair] = None,
    ):
        config = resolve_config(
            config,
            scheme=scheme,
            signature_algorithm=signature_algorithm,
            key_bits=key_bits,
            bind_intersections=bind_intersections,
            share_signatures=share_signatures,
            build_mode=build_mode,
            hash_consing=hash_consing,
            batch_hashing=batch_hashing,
            tolerance=tolerance,
        )
        self.config = config
        self.dataset = dataset
        self.template = template
        self.scheme = config.scheme
        self.bind_intersections = config.bind_intersections
        self.counters = counters or Counters()
        self.keypair = keypair or make_signer(
            config.signature_algorithm, rng=rng, key_bits=config.key_bits
        )
        self.hash_function = HashFunction(self.counters)
        # engine=None lets the ADS constructor derive one from the config
        # (honouring config.tolerance); an explicit engine takes precedence.
        if config.is_ifmh:
            self.ads: Union[IFMHTree, SignatureMesh] = IFMHTree(
                dataset,
                template,
                config=config,
                signer=self.keypair.signer,
                hash_function=self.hash_function,
                engine=engine,
                counters=self.counters,
            )
        else:
            self.ads = SignatureMesh(
                dataset,
                template,
                config=config,
                signer=self.keypair.signer,
                hash_function=self.hash_function,
                engine=engine,
                counters=self.counters,
            )

    # ------------------------------------------------------------ publishing
    def public_parameters(self) -> PublicParameters:
        """The public verification parameters handed to data users."""
        return PublicParameters(
            template=self.template,
            attribute_names=self.dataset.attribute_names,
            scheme=self.scheme,
            signature_algorithm=self.keypair.scheme,
            verifier=self.keypair.verifier,
            bind_intersections=self.bind_intersections,
        )

    def outsource(self) -> ServerPackage:
        """The upload package (database + ADS + public parameters)."""
        return ServerPackage(
            dataset=self.dataset,
            ads=self.ads,
            public_parameters=self.public_parameters(),
        )

    def publish(self, path) -> None:
        """Write the finished ADS to ``path`` as a versioned artifact.

        The artifact is everything a cold-starting server (and any client)
        needs: dataset, flat digest arrays, root indices, permutation
        array, signatures and public parameters -- see
        :mod:`repro.core.artifact` for the format.  Loading it back with
        :meth:`repro.core.server.Server.from_artifact` re-hashes nothing.
        """
        from repro.core.artifact import save_artifact

        save_artifact(self, path)

    # --------------------------------------------------------------- metrics
    @property
    def signature_count(self) -> int:
        """Signatures created while building the ADS (Fig. 5a)."""
        return self.ads.signature_count

    def ads_size_bytes(self, size_model: Optional[SizeModel] = None) -> int:
        """Serialized ADS size in bytes (Fig. 5c)."""
        model = size_model or DEFAULT_SIZE_MODEL.with_signature_size(
            self.keypair.signature_size
        )
        return self.ads.size_bytes(model)
