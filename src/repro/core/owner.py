"""The data owner: key generation, ADS construction and outsourcing.

The data owner holds the only private key in the system.  It builds the
authenticated data structure for its chosen scheme (one-signature IFMH,
multi-signature IFMH or the signature-mesh baseline), packages the database
plus the ADS for the cloud server, and publishes the public parameters
(template, schema, public key, scheme configuration) that any data user
needs in order to verify query results.

Construction is configured by one :class:`repro.core.config.SystemConfig`
object threaded through every layer; the legacy per-kwarg interface is kept
as a thin shim on top of it.  :meth:`DataOwner.publish` writes the finished
ADS to disk as a versioned artifact (:mod:`repro.core.artifact`) from which
:meth:`repro.core.server.Server.from_artifact` cold-starts without
rebuilding or re-hashing anything.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Union

from repro.core.config import SCHEMES, SIGNATURE_MESH, SystemConfig, resolve_config
from repro.core.errors import ConstructionError, JournalError
from repro.core.records import Dataset, Record, UtilityTemplate
from repro.crypto.hashing import HashFunction
from repro.crypto.serialization import verifier_from_payload, verifier_to_payload
from repro.crypto.signer import KeyPair, Verifier, make_signer
from repro.geometry.domain import Domain
from repro.geometry.engine import SplitEngine
from repro.ifmh.ifmh_tree import IFMHTree
from repro.mesh.builder import SignatureMesh
from repro.metrics.counters import Counters
from repro.metrics.sizes import DEFAULT_SIZE_MODEL, SizeModel

__all__ = [
    "SIGNATURE_MESH",
    "SCHEMES",
    "PublicParameters",
    "ServerPackage",
    "UpdateReport",
    "RecoveryReport",
    "DataOwner",
]


@dataclass(frozen=True)
class PublicParameters:
    """Everything a data user needs to verify query results.

    This is public information: the utility-function template (with its
    weight domain), the table schema, the scheme configuration and the data
    owner's *public* verification key.
    """

    template: UtilityTemplate
    attribute_names: tuple[str, ...]
    scheme: str
    signature_algorithm: str
    verifier: Verifier
    bind_intersections: bool = True
    #: Current ADS epoch.  0 for an initial build; every applied update
    #: batch bumps it, and from epoch 1 on the owner binds it into all
    #: signed messages -- a client holding current parameters therefore
    #: rejects results served from a stale (pre-update) ADS even though
    #: their signatures were once genuine.
    epoch: int = 0

    # ---------------------------------------------------------- dict codec
    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe form of the public parameters (artifact header)."""
        template = self.template
        return {
            "template": {
                "attributes": list(template.attributes),
                "domain_lower": list(template.domain.lower),
                "domain_upper": list(template.domain.upper),
                "constant_attribute": template.constant_attribute,
            },
            "attribute_names": list(self.attribute_names),
            "scheme": self.scheme,
            "signature_algorithm": self.signature_algorithm,
            "verifier": verifier_to_payload(self.verifier),
            "bind_intersections": bool(self.bind_intersections),
            "epoch": int(self.epoch),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "PublicParameters":
        """Rebuild public parameters from :meth:`to_payload` output."""
        template_data = payload["template"]
        template = UtilityTemplate(
            attributes=tuple(template_data["attributes"]),
            domain=Domain(
                lower=tuple(template_data["domain_lower"]),
                upper=tuple(template_data["domain_upper"]),
            ),
            constant_attribute=template_data["constant_attribute"],
        )
        return cls(
            template=template,
            attribute_names=tuple(payload["attribute_names"]),
            scheme=payload["scheme"],
            signature_algorithm=payload["signature_algorithm"],
            verifier=verifier_from_payload(payload["verifier"]),
            bind_intersections=bool(payload["bind_intersections"]),
            epoch=int(payload.get("epoch", 0)),
        )


@dataclass(frozen=True)
class UpdateReport:
    """Summary of one applied update batch.

    ``strategy`` records which maintenance path ran: ``"incremental"`` for
    the changed-path rebuild against the persisted arena, ``"rebuild"``
    for a full reconstruction (ineligible configurations, forced rebuilds,
    or rare tolerance-cluster cascades).
    """

    inserted: int
    deleted: int
    epoch: int
    strategy: str


@dataclass(frozen=True)
class RecoveryReport:
    """Summary of one :meth:`DataOwner.recover` run.

    ``replayed_batches`` counts the journaled batches applied on top of
    the base artifact; ``torn_tail_discarded`` is true when the journal
    ended in a partial record (crash mid-append) that the reader dropped.
    """

    base_epoch: int
    final_epoch: int
    replayed_batches: int
    torn_tail_discarded: bool


@dataclass(frozen=True)
class ServerPackage:
    """What the data owner uploads to the cloud server.

    Frozen: the package is a hand-off between trust domains, and nothing
    downstream may swap its dataset, ADS or public parameters in place.
    """

    dataset: Dataset
    ads: Union[IFMHTree, SignatureMesh]
    public_parameters: PublicParameters


class DataOwner:
    """The data owner of the three-party outsourcing model.

    Parameters
    ----------
    dataset / template:
        The table to outsource and its published utility-function template.
    config:
        A :class:`repro.core.config.SystemConfig` bundling the scheme and
        every build switch.  The remaining keyword arguments are the legacy
        per-field interface: passed without a config they build one; passed
        *with* a config they override the corresponding fields.
    scheme:
        ``"one-signature"``, ``"multi-signature"`` or ``"signature-mesh"``.
    signature_algorithm:
        ``"rsa"`` (default), ``"dsa"`` or ``"hmac"`` (test-only).
    key_bits:
        Key-size override passed to the signature scheme.
    bind_intersections:
        IFMH hardening switch (see :class:`repro.ifmh.IFMHTree`).
    share_signatures:
        Mesh-only: enable the shared-signature optimization.
    build_mode:
        IFMH-only: I-tree construction strategy (``"auto"`` uses the
        vectorized bulk build for the univariate interval configuration and
        the paper's incremental insertion otherwise).
    hash_consing:
        IFMH-only: route FMH construction through the shared-structure
        Merkle engine (interned leaf digests + hash-consed internal nodes).
        On by default; every hash value and logical counter is bit-identical
        either way, only the physical SHA-256 work drops.
    batch_hashing:
        IFMH-only: advance the shared-structure construction level by
        level across all subdomain trees at once (array-backed arena +
        bulk hashing).  On by default; bit-identical to the node-at-a-time
        engine, only faster.  Requires ``hash_consing``.
    tolerance:
        Geometry-engine tolerance (``None`` = engine default; an explicit
        ``0.0`` is honoured).
    engine:
        Geometry engine override (takes precedence over ``tolerance``).
    rng:
        Seeded random source for reproducible key generation.
    """

    def __init__(
        self,
        dataset: Dataset,
        template: UtilityTemplate,
        *,
        config: Optional[SystemConfig] = None,
        scheme: Optional[str] = None,
        signature_algorithm: Optional[str] = None,
        key_bits: Optional[int] = None,
        bind_intersections: Optional[bool] = None,
        share_signatures: Optional[bool] = None,
        build_mode: Optional[str] = None,
        hash_consing: Optional[bool] = None,
        batch_hashing: Optional[bool] = None,
        tolerance: Optional[float] = None,
        engine: Optional[SplitEngine] = None,
        rng: Optional[random.Random] = None,
        counters: Optional[Counters] = None,
        keypair: Optional[KeyPair] = None,
        construction_workers: Optional[int] = None,
        epoch: int = 0,
    ):
        config = resolve_config(
            config,
            scheme=scheme,
            signature_algorithm=signature_algorithm,
            key_bits=key_bits,
            bind_intersections=bind_intersections,
            share_signatures=share_signatures,
            build_mode=build_mode,
            hash_consing=hash_consing,
            batch_hashing=batch_hashing,
            tolerance=tolerance,
        )
        self.config = config
        self.dataset = dataset
        self.template = template
        self.scheme = config.scheme
        self.bind_intersections = config.bind_intersections
        self.counters = counters or Counters()
        self.keypair = keypair or make_signer(
            config.signature_algorithm, rng=rng, key_bits=config.key_bits
        )
        self.hash_function = HashFunction(self.counters)
        self.journal = None
        self.last_recovery: Optional[RecoveryReport] = None
        self._engine = engine
        # engine=None lets the ADS constructor derive one from the config
        # (honouring config.tolerance); an explicit engine takes precedence.
        if config.is_ifmh:
            self.ads: Union[IFMHTree, SignatureMesh] = IFMHTree(
                dataset,
                template,
                config=config,
                signer=self.keypair.signer,
                hash_function=self.hash_function,
                engine=engine,
                counters=self.counters,
                construction_workers=construction_workers,
                epoch=epoch,
            )
        else:
            self.ads = SignatureMesh(
                dataset,
                template,
                config=config,
                signer=self.keypair.signer,
                hash_function=self.hash_function,
                engine=engine,
                counters=self.counters,
                epoch=epoch,
            )

    @classmethod
    def from_artifact(cls, path, *, keypair: KeyPair, base=None) -> "DataOwner":
        """Restart a data owner from its own published artifact.

        The artifact never carries the private key, so the owner supplies
        its ``keypair`` (which must match the published verification key).
        The reconstructed ADS re-hashes nothing and stays lazy like any
        artifact load; incremental updates pick up right where the
        published epoch left off.
        """
        from repro.core.artifact import load_artifact

        loaded = load_artifact(path, base=base)
        parameters = loaded.public_parameters
        probe = b"repro:owner:keypair-probe"
        if not parameters.verifier.verify(probe, keypair.signer.sign(probe)):  # reprolint: disable=RL002 -- key-possession probe with a fixed local tag, never an ADS message; epoch binding does not apply
            raise ConstructionError(
                "the supplied keypair does not match the artifact's published "
                "verification key"
            )
        self = cls.__new__(cls)
        self.config = loaded.config
        self.dataset = loaded.dataset
        self.template = parameters.template
        self.scheme = loaded.config.scheme
        self.bind_intersections = loaded.config.bind_intersections
        self.counters = loaded.ads.counters
        self.keypair = keypair
        self.hash_function = loaded.ads.hash_function
        self.journal = None
        self.last_recovery = None
        self._engine = None
        self.ads = loaded.ads
        self.ads.signer = keypair.signer
        return self

    # -------------------------------------------------------------- updates
    @property
    def epoch(self) -> int:
        """Current ADS epoch (0 = initial build, +1 per applied batch)."""
        return self.ads.epoch

    def insert(self, record: Record) -> "UpdateReport":
        """Insert one record; equivalent to ``apply_updates(inserts=[record])``."""
        return self.apply_updates(inserts=(record,))

    def delete(self, record_id: int) -> "UpdateReport":
        """Delete one record; equivalent to ``apply_updates(deletes=[record_id])``."""
        return self.apply_updates(deletes=(record_id,))

    def apply_updates(
        self,
        inserts: Sequence[Record] = (),
        deletes: Sequence[int] = (),
        *,
        strategy: str = "auto",
    ) -> "UpdateReport":
        """Apply a batch of record deletes and inserts to the live ADS.

        Deletes are applied first (each id must exist), then inserts are
        appended (each id must be free after the deletes -- so a delete
        plus an insert of the same id replaces the record).  The whole
        batch advances the ADS by **one epoch**; the new epoch is bound
        into every re-signed message, so servers still holding the
        pre-update ADS fail verification against the owner's refreshed
        public parameters.

        ``strategy`` selects the maintenance path:

        * ``"auto"`` (default) -- the changed-path incremental rebuild
          (:mod:`repro.ifmh.updates`) where it applies (univariate bulk
          IFMH builds with batched hashing), a full rebuild elsewhere
          (d >= 2 LP geometry, ablation builders, the signature mesh).
        * ``"incremental"`` -- require the changed-path rebuild; raises
          :class:`~repro.core.errors.ConstructionError` if ineligible.
        * ``"rebuild"`` -- force a full rebuild (ablations, tests).

        Either way the post-update state is **bit-identical** (roots,
        verification objects, verdicts, per-query counters) to a fresh
        :class:`DataOwner` built over the final dataset at the same epoch.
        """
        if strategy not in ("auto", "incremental", "rebuild"):
            raise ConstructionError(
                f"unknown update strategy {strategy!r}; "
                "expected 'auto', 'incremental' or 'rebuild'"
            )
        inserts = list(inserts)
        deletes = list(deletes)
        if not inserts and not deletes:
            raise ConstructionError("an update batch needs at least one insert or delete")
        if len(set(deletes)) != len(deletes):
            raise ConstructionError("duplicate record id in the delete batch")

        records = list(self.dataset.records)
        present = {record.record_id for record in records}
        for record_id in deletes:
            if record_id not in present:
                raise ConstructionError(
                    f"cannot delete record id {record_id}: no such record"
                )
            present.discard(record_id)
        for record in inserts:
            if record.record_id in present:
                raise ConstructionError(
                    f"cannot insert duplicate record id {record.record_id}"
                )
            present.add(record.record_id)
        if len(records) - len(deletes) + len(inserts) == 0:
            raise ConstructionError(
                "updates must leave at least one record; deleting the whole "
                "dataset is not supported (retire the ADS instead)"
            )

        new_epoch = self.epoch + 1
        if self.journal is not None:
            # Write-ahead: the batch is durable before the ADS changes, so a
            # crash anywhere past this line replays it on recovery.
            self.journal.append_batch(
                epoch=new_epoch, inserts=inserts, deletes=deletes, strategy=strategy
            )
        if strategy == "rebuild":
            report = self._rebuild_update(records, deletes, inserts, new_epoch)
        else:
            report = self._incremental_update(records, deletes, inserts, new_epoch)
            if report is None:
                if strategy == "incremental":
                    raise ConstructionError(
                        "incremental updates require a univariate bulk-built IFMH "
                        "tree with batched hashing; use strategy='auto' to fall "
                        "back to a rebuild"
                    )
                report = self._rebuild_update(records, deletes, inserts, new_epoch)
        return report

    def _final_records(
        self, records: list, deletes: Sequence[int], inserts: Sequence[Record]
    ) -> list:
        removed = set(deletes)
        kept = [record for record in records if record.record_id not in removed]
        kept.extend(inserts)
        return kept

    def _rebuild_update(
        self, records: list, deletes: Sequence[int], inserts: Sequence[Record], epoch: int
    ) -> "UpdateReport":
        """Full reconstruction of the final dataset at the new epoch."""
        dataset = Dataset(
            attribute_names=self.dataset.attribute_names,
            records=self._final_records(records, deletes, inserts),
        )
        ads_class = IFMHTree if self.config.is_ifmh else SignatureMesh
        self.ads = ads_class(
            dataset,
            self.template,
            config=self.config,
            signer=self.keypair.signer,
            hash_function=self.hash_function,
            engine=self._engine,
            counters=self.counters,
            epoch=epoch,
        )
        self.dataset = dataset
        return UpdateReport(
            inserted=len(inserts), deleted=len(deletes), epoch=epoch, strategy="rebuild"
        )

    def _incremental_update(
        self, records: list, deletes: Sequence[int], inserts: Sequence[Record], epoch: int
    ) -> Optional["UpdateReport"]:
        """Changed-path maintenance; ``None`` when the ADS is ineligible.

        The batch applies as a sequence of single-record steps -- each step
        is bit-identical to a fresh build of its intermediate dataset, so
        the final state matches a fresh build of the final dataset.  Only
        the last step signs (at the batch's new epoch); intermediate
        signatures would be discarded anyway.
        """
        from repro.ifmh.updates import apply_incremental_update

        if not self.config.is_ifmh:
            return None
        steps: list[tuple[Optional[Record], Optional[int]]] = [
            (None, record_id) for record_id in deletes
        ] + [(record, None) for record in inserts]
        if len(deletes) == len(records) and inserts:
            # The deletes would drain every current record, and single-record
            # steps cannot build an empty intermediate ADS -- front-load one
            # insert whose id is free right now to keep every step non-empty.
            current_ids = {record.record_id for record in records}
            lead = next(
                (
                    position
                    for position, (record, _record_id) in enumerate(steps)
                    if record is not None and record.record_id not in current_ids
                ),
                None,
            )
            if lead is None:
                # Every insert reuses an id being deleted (a whole-dataset
                # replace-in-place): no safe step order exists, rebuild.
                return None
            steps.insert(0, steps.pop(lead))
        tree = self.ads
        dataset = self.dataset
        current_records = list(records)
        for position, (record, record_id) in enumerate(steps):
            last = position == len(steps) - 1
            current_records = (
                [r for r in current_records if r.record_id != record_id]
                if record_id is not None
                else current_records + [record]
            )
            dataset = Dataset(
                attribute_names=self.dataset.attribute_names, records=current_records
            )
            tree = apply_incremental_update(
                tree,
                dataset,
                inserted=record,
                deleted_id=record_id,
                epoch=epoch,
                sign=last,
            )
            if tree is None:
                return None
        self.ads = tree
        self.dataset = dataset
        return UpdateReport(
            inserted=len(inserts),
            deleted=len(deletes),
            epoch=epoch,
            strategy="incremental",
        )

    # ------------------------------------------------------------ durability
    def lineage(self) -> str:
        """Fingerprint of the published verification key (journal binding)."""
        from repro.resilience.journal import lineage_fingerprint

        return lineage_fingerprint(verifier_to_payload(self.keypair.verifier))

    def attach_journal(self, journal) -> None:
        """Route subsequent update batches through a write-ahead journal.

        The journal must belong to this owner's lineage and be exactly
        caught up (its newest batch epoch equals the owner's epoch):
        attaching a stale or foreign journal would either re-log applied
        batches or chain epochs onto the wrong history.
        """
        scan = journal.scan()
        lineage = scan.header.get("lineage")
        if lineage != self.lineage():
            raise JournalError(
                f"journal {journal.path!r} belongs to a different ADS lineage "
                f"({lineage!r}); refusing to attach it to this owner"
            )
        if scan.last_epoch != self.epoch:
            raise JournalError(
                f"journal {journal.path!r} ends at epoch {scan.last_epoch} but "
                f"the owner is at epoch {self.epoch}; recover from the journal "
                "(or prune it) before attaching",
                epoch=self.epoch,
            )
        self.journal = journal

    def enable_journal(self, path, *, fsync: bool = True):
        """Create (or reopen) the write-ahead journal at ``path`` and attach it.

        Returns the attached :class:`repro.resilience.journal.UpdateJournal`.
        """
        from repro.resilience.journal import UpdateJournal

        if os.path.exists(os.fspath(path)):
            journal = UpdateJournal(path, fsync=fsync)
        else:
            journal = UpdateJournal.create(
                path, lineage=self.lineage(), base_epoch=self.epoch, fsync=fsync
            )
        self.attach_journal(journal)
        return journal

    @classmethod
    def recover(cls, journal, base_artifact, *, keypair: KeyPair, base=None) -> "DataOwner":
        """Rebuild the owner after a crash: load the artifact, replay the journal.

        Loads the newest published artifact (``base_artifact``, with
        ``base`` when it is a delta) and replays every committed journal
        batch past the artifact's epoch, in order.  The result is
        **bit-identical** -- roots, verification objects, logical and
        physical hash counters -- to an owner that applied the same batches
        without ever crashing, because replay runs the exact same
        ``apply_updates`` code over the exact same starting state.  A torn
        journal tail (crash mid-append) is discarded: that batch was never
        acknowledged as durable.  The journal is re-attached to the
        recovered owner, and :attr:`last_recovery` summarizes the replay.
        """
        owner = cls.from_artifact(base_artifact, keypair=keypair, base=base)
        scan = journal.scan()
        lineage = scan.header.get("lineage")
        if lineage != owner.lineage():
            raise JournalError(
                f"journal {journal.path!r} belongs to a different ADS lineage "
                f"({lineage!r}); it cannot recover this artifact"
            )
        base_epoch = owner.epoch
        replay = journal.replay_batches(base_epoch)
        for batch in replay:
            report = owner.apply_updates(
                inserts=batch.inserts, deletes=batch.deletes, strategy=batch.strategy
            )
            if report.epoch != batch.epoch:
                raise JournalError(
                    f"replaying journal record {batch.index} advanced the owner "
                    f"to epoch {report.epoch}, expected {batch.epoch}",
                    record_index=batch.index,
                    epoch=batch.epoch,
                )
        if scan.torn_tail:
            journal.truncate_torn_tail()
        owner.journal = journal
        owner.last_recovery = RecoveryReport(
            base_epoch=base_epoch,
            final_epoch=owner.epoch,
            replayed_batches=len(replay),
            torn_tail_discarded=scan.torn_tail,
        )
        return owner

    # ------------------------------------------------------------ publishing
    def public_parameters(self) -> PublicParameters:
        """The public verification parameters handed to data users."""
        return PublicParameters(
            template=self.template,
            attribute_names=self.dataset.attribute_names,
            scheme=self.scheme,
            signature_algorithm=self.keypair.scheme,
            verifier=self.keypair.verifier,
            bind_intersections=self.bind_intersections,
            epoch=self.epoch,
        )

    def outsource(self) -> ServerPackage:
        """The upload package (database + ADS + public parameters)."""
        return ServerPackage(
            dataset=self.dataset,
            ads=self.ads,
            public_parameters=self.public_parameters(),
        )

    def publish(self, path, *, base=None, arena_shards=None):
        """Write the finished ADS to ``path`` as a versioned artifact.

        The artifact is everything a cold-starting server (and any client)
        needs: dataset, flat digest arrays, root indices, permutation
        array, signatures and public parameters -- see
        :mod:`repro.core.artifact` for the format.  Loading it back with
        :meth:`repro.core.server.Server.from_artifact` re-hashes nothing.
        The write is atomic (temp file + fsync + rename), so a crash
        mid-publish never tears an already-published artifact.

        With ``base`` (the path of a previously published artifact of this
        ADS lineage) a **delta artifact** is written instead: unchanged
        arrays are inherited from the base by checksum reference, and the
        append-only Merkle arena ships only its new tail.  Loading a delta
        requires the matching base file; splicing it onto any other base
        raises :class:`~repro.core.errors.ConstructionError`.  A missing
        or corrupt base falls back to a full publish (chain repair) --
        the returned :class:`~repro.core.artifact.PublishReport` says
        which mode was written and why.

        With ``arena_shards=k`` (``k >= 2``, IFMH only) the Merkle arena
        -- the bulk of the bundle -- is written as ``k`` contiguous-row
        sidecar files next to the artifact instead of inline; the header
        pins each shard's checksum and loading reassembles them
        transparently.  Sharding composes with neither ``base`` (a delta
        already ships only the arena tail) nor in-memory buffers.

        A publish also marks every journaled batch up to the current
        epoch as durable in the attached write-ahead journal (if any), so
        recovery replays only batches newer than the newest artifact.
        """
        from repro.core.artifact import save_artifact

        report = save_artifact(self, path, base=base, arena_shards=arena_shards)
        if self.journal is not None:
            self.journal.note_published(self.epoch)
        return report

    # --------------------------------------------------------------- metrics
    @property
    def signature_count(self) -> int:
        """Signatures created while building the ADS (Fig. 5a)."""
        return self.ads.signature_count

    def ads_size_bytes(self, size_model: Optional[SizeModel] = None) -> int:
        """Serialized ADS size in bytes (Fig. 5c)."""
        model = size_model or DEFAULT_SIZE_MODEL.with_signature_size(
            self.keypair.signature_size
        )
        return self.ads.size_bytes(model)
