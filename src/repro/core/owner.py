"""The data owner: key generation, ADS construction and outsourcing.

The data owner holds the only private key in the system.  It builds the
authenticated data structure for its chosen scheme (one-signature IFMH,
multi-signature IFMH or the signature-mesh baseline), packages the database
plus the ADS for the cloud server, and publishes the public parameters
(template, schema, public key, scheme configuration) that any data user
needs in order to verify query results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.errors import ConstructionError
from repro.core.records import Dataset, UtilityTemplate
from repro.crypto.hashing import HashFunction
from repro.crypto.signer import KeyPair, Verifier, make_signer
from repro.geometry.engine import SplitEngine
from repro.ifmh.ifmh_tree import IFMHTree, MULTI_SIGNATURE, ONE_SIGNATURE
from repro.mesh.builder import SignatureMesh
from repro.metrics.counters import Counters
from repro.metrics.sizes import DEFAULT_SIZE_MODEL, SizeModel

__all__ = [
    "SIGNATURE_MESH",
    "SCHEMES",
    "PublicParameters",
    "ServerPackage",
    "DataOwner",
]

#: Scheme name of the baseline (the two IFMH scheme names live in repro.ifmh).
SIGNATURE_MESH = "signature-mesh"

#: All supported verification schemes.
SCHEMES = (ONE_SIGNATURE, MULTI_SIGNATURE, SIGNATURE_MESH)


@dataclass(frozen=True)
class PublicParameters:
    """Everything a data user needs to verify query results.

    This is public information: the utility-function template (with its
    weight domain), the table schema, the scheme configuration and the data
    owner's *public* verification key.
    """

    template: UtilityTemplate
    attribute_names: tuple[str, ...]
    scheme: str
    signature_algorithm: str
    verifier: Verifier
    bind_intersections: bool = True


@dataclass
class ServerPackage:
    """What the data owner uploads to the cloud server."""

    dataset: Dataset
    ads: Union[IFMHTree, SignatureMesh]
    public_parameters: PublicParameters


class DataOwner:
    """The data owner of the three-party outsourcing model.

    Parameters
    ----------
    dataset / template:
        The table to outsource and its published utility-function template.
    scheme:
        ``"one-signature"``, ``"multi-signature"`` or ``"signature-mesh"``.
    signature_algorithm:
        ``"rsa"`` (default), ``"dsa"`` or ``"hmac"`` (test-only).
    key_bits:
        Key-size override passed to the signature scheme.
    bind_intersections:
        IFMH hardening switch (see :class:`repro.ifmh.IFMHTree`).
    share_signatures:
        Mesh-only: enable the shared-signature optimization.
    build_mode:
        IFMH-only: I-tree construction strategy (``"auto"`` uses the
        vectorized bulk build for the univariate interval configuration and
        the paper's incremental insertion otherwise).
    hash_consing:
        IFMH-only: route FMH construction through the shared-structure
        Merkle engine (interned leaf digests + hash-consed internal nodes).
        On by default; every hash value and logical counter is bit-identical
        either way, only the physical SHA-256 work drops.
    batch_hashing:
        IFMH-only: advance the shared-structure construction level by
        level across all subdomain trees at once (array-backed arena +
        bulk hashing).  On by default; bit-identical to the node-at-a-time
        engine, only faster.  Requires ``hash_consing``.
    engine:
        Geometry engine override.
    rng:
        Seeded random source for reproducible key generation.
    """

    def __init__(
        self,
        dataset: Dataset,
        template: UtilityTemplate,
        *,
        scheme: str = ONE_SIGNATURE,
        signature_algorithm: str = "rsa",
        key_bits: Optional[int] = None,
        bind_intersections: bool = True,
        share_signatures: bool = True,
        build_mode: str = "auto",
        hash_consing: bool = True,
        batch_hashing: bool = True,
        engine: Optional[SplitEngine] = None,
        rng: Optional[random.Random] = None,
        counters: Optional[Counters] = None,
        keypair: Optional[KeyPair] = None,
    ):
        if scheme not in SCHEMES:
            raise ConstructionError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
        self.dataset = dataset
        self.template = template
        self.scheme = scheme
        self.bind_intersections = bind_intersections
        self.counters = counters or Counters()
        self.keypair = keypair or make_signer(signature_algorithm, rng=rng, key_bits=key_bits)
        self.hash_function = HashFunction(self.counters)

        if scheme in (ONE_SIGNATURE, MULTI_SIGNATURE):
            self.ads: Union[IFMHTree, SignatureMesh] = IFMHTree(
                dataset,
                template,
                mode=scheme,
                signer=self.keypair.signer,
                hash_function=self.hash_function,
                engine=engine,
                counters=self.counters,
                bind_intersections=bind_intersections,
                build_mode=build_mode,
                hash_consing=hash_consing,
                batch_hashing=batch_hashing,
            )
        else:
            self.ads = SignatureMesh(
                dataset,
                template,
                signer=self.keypair.signer,
                hash_function=self.hash_function,
                engine=engine,
                counters=self.counters,
                share_signatures=share_signatures,
            )

    # ------------------------------------------------------------ publishing
    def public_parameters(self) -> PublicParameters:
        """The public verification parameters handed to data users."""
        return PublicParameters(
            template=self.template,
            attribute_names=self.dataset.attribute_names,
            scheme=self.scheme,
            signature_algorithm=self.keypair.scheme,
            verifier=self.keypair.verifier,
            bind_intersections=self.bind_intersections,
        )

    def outsource(self) -> ServerPackage:
        """The upload package (database + ADS + public parameters)."""
        return ServerPackage(
            dataset=self.dataset,
            ads=self.ads,
            public_parameters=self.public_parameters(),
        )

    # --------------------------------------------------------------- metrics
    @property
    def signature_count(self) -> int:
        """Signatures created while building the ADS (Fig. 5a)."""
        return self.ads.signature_count

    def ads_size_bytes(self, size_model: Optional[SizeModel] = None) -> int:
        """Serialized ADS size in bytes (Fig. 5c)."""
        model = size_model or DEFAULT_SIZE_MODEL.with_signature_size(
            self.keypair.signature_size
        )
        return self.ads.size_bytes(model)
