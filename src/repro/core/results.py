"""Query results and verification reports.

The server answers a query with a :class:`QueryResult` (the matching records
in ascending score order) plus a scheme-specific verification object (see
:mod:`repro.ifmh.vo` and :mod:`repro.mesh.structures`).  The client's
verification produces a :class:`VerificationReport` describing which checks
passed, which failed and what the verification cost was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import VerificationError
from repro.core.records import Record
from repro.metrics.counters import Counters

__all__ = ["QueryResult", "VerificationReport"]


@dataclass(frozen=True)
class QueryResult:
    """The records satisfying a query, in ascending score order."""

    records: tuple[Record, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "records", tuple(self.records))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def is_empty(self) -> bool:
        return len(self.records) == 0

    def record_ids(self) -> list[int]:
        """Identifiers of the returned records (ascending score order)."""
        return [record.record_id for record in self.records]


@dataclass
class VerificationReport:
    """Outcome of verifying a query result against its verification object.

    Attributes
    ----------
    is_valid:
        True only when *every* check passed: the reconstructed root matched
        the owner's signature, the subdomain contains the query input and
        re-executing the query over the authenticated window reproduces the
        returned result exactly.
    checks:
        Name -> pass/fail for each individual check (useful in tests and
        when diagnosing a failed verification).
    failures:
        Human-readable explanations for every failed check.
    counters:
        Hash / signature-verification counts incurred by the client (the
        paper's Fig. 7 metrics).
    timings:
        Wall-clock split of the verification (hashing vs signature
        verification vs query re-execution), in seconds.
    """

    is_valid: bool = True
    checks: Dict[str, bool] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)
    counters: Counters = field(default_factory=Counters)
    timings: Dict[str, float] = field(default_factory=dict)

    def record(self, check: str, passed: bool, detail: Optional[str] = None) -> None:
        """Record the outcome of one named check."""
        self.checks[check] = passed and self.checks.get(check, True)
        if not passed:
            self.is_valid = False
            self.failures.append(detail or f"check {check!r} failed")

    def failed_checks(self) -> tuple[str, ...]:
        """Names of the checks that failed, in recording order."""
        return tuple(name for name, passed in self.checks.items() if not passed)

    def raise_if_invalid(
        self,
        *,
        query_kind: Optional[str] = None,
        scheme: Optional[str] = None,
        epoch: Optional[int] = None,
        replica_id: Optional[int] = None,
    ) -> None:
        """Raise :class:`VerificationError` when any check failed.

        The raised error carries the failing check names plus whatever
        structured context the caller supplies (see
        :class:`~repro.core.errors.ContextualReproError`), so handlers and
        failover logic branch on fields, not message substrings.
        """
        if not self.is_valid:
            raise VerificationError(
                "; ".join(self.failures) or "verification failed",
                failed_checks=self.failed_checks(),
                query_kind=query_kind,
                scheme=scheme,
                epoch=epoch,
                replica_id=replica_id,
            )

    @property
    def total_time(self) -> float:
        """Total verification wall-clock time in seconds."""
        return sum(self.timings.values())

    def summary(self) -> str:
        """One-line human-readable summary (used by the examples)."""
        status = "VALID" if self.is_valid else "INVALID"
        passed = sum(1 for ok in self.checks.values() if ok)
        return f"{status} ({passed}/{len(self.checks)} checks passed)"
