"""Exception hierarchy for the verification library.

Every error raised by the public API derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing configuration mistakes from verification
failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidQueryError",
    "ConstructionError",
    "QueryProcessingError",
    "VerificationError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class InvalidQueryError(ReproError, ValueError):
    """A query object is malformed (bad k, inverted range, wrong dimension)."""


class ConstructionError(ReproError):
    """The authenticated data structure could not be built."""


class QueryProcessingError(ReproError):
    """The server failed to process a query (e.g. X outside the domain)."""


class VerificationError(ReproError):
    """Raised by strict verification entry points when a check fails.

    The default client API returns a :class:`VerificationReport` instead of
    raising; this exception backs the ``verify_or_raise`` convenience path.
    """
