"""Exception hierarchy for the verification library.

Every error raised by the public API derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing configuration mistakes from verification
failures.

Protocol-level failures (:class:`QueryProcessingError`,
:class:`VerificationError`) carry **structured context** -- the query kind,
scheme, ADS epoch and, when routed through a replica pool, the replica id
-- so failover decisions and logs never have to parse message strings.
Context fields are filled at the layer that knows them (the server stamps
query kind / scheme / epoch, the pool stamps the replica id) via
:meth:`ContextualReproError.annotate`; once set, a field is never
overwritten.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

__all__ = [
    "ReproError",
    "ContextualReproError",
    "InvalidQueryError",
    "ConstructionError",
    "QueryProcessingError",
    "VerificationError",
    "JournalError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ContextualReproError(ReproError):
    """A protocol error carrying structured, machine-readable context.

    ``query_kind``, ``scheme``, ``epoch`` and ``replica_id`` are optional
    and filled incrementally as the error propagates outward (server ->
    pool -> caller).  :attr:`context` exposes the populated fields as a
    plain dict; ``str(err)`` appends them in a stable ``[key=value ...]``
    suffix so human-readable logs stay informative without anyone parsing
    them back.
    """

    def __init__(
        self,
        message: object = "",
        *,
        query_kind: Optional[str] = None,
        scheme: Optional[str] = None,
        epoch: Optional[int] = None,
        replica_id: Optional[int] = None,
    ):
        super().__init__(message)
        self.message = str(message)
        self.query_kind = query_kind
        self.scheme = scheme
        self.epoch = epoch
        self.replica_id = replica_id

    #: Context attributes, in the order they render.
    _CONTEXT_FIELDS: Tuple[str, ...] = ("query_kind", "scheme", "epoch", "replica_id")

    @property
    def context(self) -> Dict[str, Union[str, int]]:
        """The populated context fields as a plain dict (stable order)."""
        return {
            name: value
            for name in self._CONTEXT_FIELDS
            if (value := getattr(self, name)) is not None
        }

    def annotate(self, **fields: Union[str, int, None]) -> "ContextualReproError":
        """Fill in missing context fields in place; first writer wins.

        Returns ``self`` so callers can ``raise err.annotate(...)`` -- but
        the idiomatic pattern inside an ``except`` block is to annotate and
        then bare-``raise`` to preserve the traceback.
        """
        for name, value in fields.items():
            if name not in self._CONTEXT_FIELDS:
                raise TypeError(f"unknown error-context field {name!r}")
            if value is not None and getattr(self, name) is None:
                setattr(self, name, value)
        return self

    def __str__(self) -> str:
        context = self.context
        if not context:
            return self.message
        rendered = " ".join(f"{key}={value}" for key, value in context.items())
        return f"{self.message} [{rendered}]"


class InvalidQueryError(ReproError, ValueError):
    """A query object is malformed (bad k, inverted range, wrong dimension)."""


class ConstructionError(ReproError):
    """The authenticated data structure could not be built."""


class QueryProcessingError(ContextualReproError):
    """The server failed to process a query (e.g. X outside the domain).

    Carries the structured context of :class:`ContextualReproError`; the
    replica pool treats any ``QueryProcessingError`` from a replica as a
    replica fault and fails over.
    """


class JournalError(ContextualReproError):
    """The write-ahead update journal is unusable or inconsistent.

    Raised for checksum-corrupted records, broken epoch chains and journals
    that do not belong to the artifact lineage they are replayed against.
    ``record_index`` names the offending journal record (0-based position
    in the file) when one is identifiable; a *torn tail* -- a partial final
    record from a crash mid-append -- is **not** an error and is discarded
    by the reader instead of raising.
    """

    def __init__(
        self,
        message: object = "",
        *,
        record_index: Optional[int] = None,
        query_kind: Optional[str] = None,
        scheme: Optional[str] = None,
        epoch: Optional[int] = None,
        replica_id: Optional[int] = None,
    ):
        super().__init__(
            message,
            query_kind=query_kind,
            scheme=scheme,
            epoch=epoch,
            replica_id=replica_id,
        )
        self.record_index = record_index

    _CONTEXT_FIELDS: Tuple[str, ...] = (
        "record_index",
        "query_kind",
        "scheme",
        "epoch",
        "replica_id",
    )


class VerificationError(ContextualReproError):
    """Raised by strict verification entry points when a check fails.

    The default client API returns a :class:`VerificationReport` instead of
    raising; this exception backs the ``verify_or_raise`` convenience path.
    ``failed_checks`` names the individual checks that failed, so callers
    branch on check names instead of message substrings.
    """

    def __init__(
        self,
        message: object = "",
        *,
        failed_checks: Tuple[str, ...] = (),
        query_kind: Optional[str] = None,
        scheme: Optional[str] = None,
        epoch: Optional[int] = None,
        replica_id: Optional[int] = None,
    ):
        super().__init__(
            message,
            query_kind=query_kind,
            scheme=scheme,
            epoch=epoch,
            replica_id=replica_id,
        )
        self.failed_checks = tuple(failed_checks)
