"""Hardware-parallelism introspection for scaling decisions.

Every gate or knob that scales work to "the machine's cores" must agree on
what that number is.  ``os.cpu_count()`` reports the cores the *host* has,
which overstates what this process may use under CPU affinity masks or
cgroup quotas (CI runners, containers, ``taskset``); a throughput floor
derived from it can then be physically unreachable.  This module is the
single sanctioned source of the parallelism actually available to the
current process -- reprolint rule RL011 bans ``os.cpu_count()`` for
scaling decisions everywhere else.
"""

from __future__ import annotations

import os

__all__ = ["available_cores", "resolve_worker_count"]


def available_cores() -> int:
    """CPU cores the current process may actually run on (>= 1).

    ``len(os.sched_getaffinity(0))`` respects affinity masks and, on Linux,
    the cpuset half of container limits; platforms without it (macOS,
    Windows) fall back to ``os.cpu_count()``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platform behaviour
            pass
    return max(1, os.cpu_count() or 1)


def resolve_worker_count(workers: int | None) -> int:
    """Normalize a worker-count knob: ``None``/``0`` means all available cores.

    Negative values are an error; explicit positive values are honoured
    verbatim (oversubscription is the caller's informed choice -- the
    parallel builders stay bit-identical at any worker count).
    """
    if workers is None or workers == 0:
        return available_cores()
    if workers < 0:
        raise ValueError(f"worker count must be >= 0 or None, got {workers}")
    return int(workers)
