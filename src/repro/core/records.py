"""Records, datasets and the utility-function template.

The data owner outsources a relational table.  Together with the table it
publishes a *utility-function template* (paper section 2.1, Fig. 1): the
declaration of which attributes act as coefficients of the query-supplied
weight variables.  The template turns every record into a
:class:`~repro.geometry.functions.LinearFunction` over the weight space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from repro.crypto.serialization import (
    encode_float_vector,
    encode_int,
    encode_sequence,
    encode_str,
)
from repro.geometry.domain import Domain
from repro.geometry.functions import LinearFunction

__all__ = ["Record", "Dataset", "UtilityTemplate"]


@dataclass(frozen=True)
class Record:
    """One row of the outsourced table.

    Attributes
    ----------
    record_id:
        Stable identifier assigned by the data owner (e.g. applicant ID).
    values:
        Numeric attribute values, in the order given by the dataset's
        ``attribute_names``.
    label:
        Optional human-readable label (name, case number, ...), carried
        along but never interpreted by the data structures.
    """

    record_id: int
    values: tuple[float, ...]
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(float(v) for v in self.values))

    def value(self, position: int) -> float:
        """Attribute value at ``position``."""
        return self.values[position]

    def to_bytes(self) -> bytes:
        """Canonical encoding; this is the ``H(r_j)`` input in the paper."""
        return encode_sequence(
            [
                encode_str("record"),
                encode_int(self.record_id),
                encode_float_vector(self.values),
                encode_str(self.label),
            ]
        )


@dataclass
class Dataset:
    """An ordered collection of records plus their attribute names."""

    attribute_names: tuple[str, ...]
    records: list[Record] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.attribute_names = tuple(self.attribute_names)
        seen: set[int] = set()
        for record in self.records:
            if len(record.values) != len(self.attribute_names):
                raise ValueError(
                    f"record {record.record_id} has {len(record.values)} values, "
                    f"expected {len(self.attribute_names)}"
                )
            if record.record_id in seen:
                raise ValueError(f"duplicate record id {record.record_id}")
            seen.add(record.record_id)

    # ------------------------------------------------------------- factory
    @classmethod
    def from_rows(
        cls,
        attribute_names: Sequence[str],
        rows: Iterable[Sequence[float]],
        labels: Optional[Sequence[str]] = None,
    ) -> "Dataset":
        """Build a dataset from plain rows, assigning sequential record ids."""
        records = []
        labels = list(labels) if labels is not None else None
        for position, row in enumerate(rows):
            label = labels[position] if labels else ""
            records.append(Record(record_id=position, values=tuple(row), label=label))
        return cls(attribute_names=tuple(attribute_names), records=records)

    # ----------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, position: int) -> Record:
        return self.records[position]

    def by_id(self, record_id: int) -> Record:
        """Look up a record by its identifier."""
        for record in self.records:
            if record.record_id == record_id:
                return record
        raise KeyError(f"no record with id {record_id}")

    def attribute_index(self, name: str) -> int:
        """Position of the named attribute."""
        try:
            return self.attribute_names.index(name)
        except ValueError:
            raise KeyError(
                f"unknown attribute {name!r}; known: {list(self.attribute_names)}"
            ) from None


@dataclass(frozen=True)
class UtilityTemplate:
    """The utility-function template published with the database.

    ``Score(X) = sum_k record[attribute_k] * x_k (+ constant_attribute)``.

    Parameters
    ----------
    attributes:
        Names of the attributes whose values become the coefficients of the
        weight variables, in variable order.
    domain:
        The admissible box of weight vectors (defaults to the unit box).
    constant_attribute:
        Optional attribute whose value is added as a constant term (used by
        affine templates such as baseline risk scores).
    """

    attributes: tuple[str, ...]
    domain: Optional[Domain] = None
    constant_attribute: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", tuple(self.attributes))
        if len(self.attributes) == 0:
            raise ValueError("a utility template needs at least one attribute")
        if self.domain is None:
            object.__setattr__(self, "domain", Domain.unit_box(len(self.attributes)))
        if self.domain.dimension != len(self.attributes):
            raise ValueError(
                f"domain dimension {self.domain.dimension} does not match "
                f"{len(self.attributes)} template attributes"
            )

    @property
    def dimension(self) -> int:
        """Number of weight variables."""
        return len(self.attributes)

    # ----------------------------------------------------------- conversion
    def function_for(self, record: Record, dataset: Dataset) -> LinearFunction:
        """Interpret ``record`` as a score function (paper Fig. 1)."""
        coefficients = tuple(
            record.value(dataset.attribute_index(name)) for name in self.attributes
        )
        constant = 0.0
        if self.constant_attribute is not None:
            constant = record.value(dataset.attribute_index(self.constant_attribute))
        return LinearFunction(index=record.record_id, coefficients=coefficients, constant=constant)

    def functions_for(self, dataset: Dataset) -> list[LinearFunction]:
        """Interpret every record of the dataset as a score function."""
        return [self.function_for(record, dataset) for record in dataset]

    def function_from_schema(
        self, record: Record, attribute_names: Sequence[str]
    ) -> LinearFunction:
        """Interpret a record as a score function given only the table schema.

        The verifying client does not hold the dataset, only its published
        attribute order; this resolves the template's attribute references
        against that order.
        """
        positions = {name: position for position, name in enumerate(attribute_names)}
        try:
            coefficients = tuple(record.value(positions[name]) for name in self.attributes)
            constant = (
                record.value(positions[self.constant_attribute])
                if self.constant_attribute is not None
                else 0.0
            )
        except KeyError as missing:
            raise KeyError(f"schema is missing template attribute {missing}") from None
        return LinearFunction(
            index=record.record_id, coefficients=coefficients, constant=constant
        )

    def score(self, record: Record, dataset: Dataset, weights: Sequence[float]) -> float:
        """Convenience: the record's score under the given weights."""
        return self.function_for(record, dataset).evaluate(weights)

    def to_bytes(self) -> bytes:
        """Canonical encoding (published alongside the database)."""
        parts = [encode_str("template")]
        parts.extend(encode_str(name) for name in self.attributes)
        parts.append(self.domain.to_bytes())
        parts.append(encode_str(self.constant_attribute or ""))
        return encode_sequence(parts)
