"""Query re-execution checks shared by every verification scheme.

After the cryptographic part of a verification has established that the
returned records and the two boundary entries are authentic and form a
contiguous window of the correct subdomain's sorted list, the client still
has to *mimic the server's query processing* (paper section 3.3, step 2):
recompute the scores, confirm the window is sorted and bracketed by the
boundaries, and confirm that the window is exactly the set of records that
satisfies the query.  Both the IFMH verifier and the signature-mesh verifier
delegate that logic to :func:`recheck_query`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.queries import AnalyticQuery, KNNQuery, RangeQuery, TopKQuery
from repro.core.records import UtilityTemplate
from repro.core.results import QueryResult, VerificationReport
from repro.merkle.fmh_tree import BoundaryEntry

__all__ = ["recheck_query", "boundary_score", "SCORE_TOLERANCE"]

#: Numerical slack used when re-checking score conditions.
SCORE_TOLERANCE = 1e-9


def boundary_score(
    boundary: BoundaryEntry,
    template: UtilityTemplate,
    attribute_names: Sequence[str],
    weights: Sequence[float],
) -> float:
    """Score of a boundary entry at ``weights`` (+/- infinity for tokens)."""
    if boundary.token == "min":
        return float("-inf")
    if boundary.token == "max":
        return float("inf")
    return template.function_from_schema(boundary.item, attribute_names).evaluate(weights)


def recheck_query(
    query: AnalyticQuery,
    result: QueryResult,
    left: BoundaryEntry,
    right: BoundaryEntry,
    template: UtilityTemplate,
    attribute_names: Sequence[str],
    report: VerificationReport,
) -> None:
    """Mimic the server's query processing over the authenticated window.

    Every conclusion is recorded on ``report``; the function never raises.
    """
    weights = query.weights
    scores = [
        template.function_from_schema(record, attribute_names).evaluate(weights)
        for record in result.records
    ]
    ascending = all(
        earlier <= later + SCORE_TOLERANCE for earlier, later in zip(scores, scores[1:])
    )
    report.record(
        "result-sorted",
        ascending,
        "returned records are not in ascending score order",
    )

    left_score = boundary_score(left, template, attribute_names, weights)
    right_score = boundary_score(right, template, attribute_names, weights)
    brackets = (
        left_score <= scores[0] + SCORE_TOLERANCE
        and scores[-1] <= right_score + SCORE_TOLERANCE
        if scores
        else left_score <= right_score + SCORE_TOLERANCE
    )
    report.record(
        "boundaries-bracket-result",
        brackets,
        "boundary records do not bracket the returned window",
    )

    if isinstance(query, RangeQuery):
        inside = all(
            query.low - SCORE_TOLERANCE <= score <= query.high + SCORE_TOLERANCE
            for score in scores
        )
        report.record("range-soundness", inside, "a returned record falls outside [l, u]")
        report.record(
            "range-completeness-left",
            left_score < query.low + SCORE_TOLERANCE,
            "the left boundary record also satisfies the range; records were dropped",
        )
        report.record(
            "range-completeness-right",
            right_score > query.high - SCORE_TOLERANCE,
            "the right boundary record also satisfies the range; records were dropped",
        )
    elif isinstance(query, TopKQuery):
        report.record(
            "topk-ends-at-maximum",
            right.token == "max",
            "a top-k result must extend to the top of the sorted list",
        )
        expected_full = len(result) == query.k
        whole_database = left.token == "min" and len(result) < query.k
        report.record(
            "topk-cardinality",
            expected_full or whole_database,
            f"expected {query.k} records (or the whole database), got {len(result)}",
        )
    elif isinstance(query, KNNQuery):
        expected_full = len(result) == query.k
        whole_database = left.token == "min" and right.token == "max" and len(result) < query.k
        report.record(
            "knn-cardinality",
            expected_full or whole_database,
            f"expected {query.k} records (or the whole database), got {len(result)}",
        )
        if scores:
            worst = max(abs(score - query.target) for score in scores)
            left_distance = abs(left_score - query.target)
            right_distance = abs(right_score - query.target)
            report.record(
                "knn-window-optimal",
                worst <= left_distance + SCORE_TOLERANCE
                and worst <= right_distance + SCORE_TOLERANCE,
                "an excluded neighbour is closer to the target than a returned record",
            )
