"""The cloud server: query processing and verification-object construction.

The server is *untrusted*: it holds the database and the owner-built ADS,
answers analytic queries and attaches a verification object to every result.
Its cost (the number of ADS nodes / mesh cells it touches per query) is the
paper's Fig. 6 metric and is tracked on a per-query :class:`Counters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.errors import QueryProcessingError
from repro.core.owner import ServerPackage, SIGNATURE_MESH
from repro.core.queries import AnalyticQuery
from repro.core.results import QueryResult
from repro.ifmh.ifmh_tree import IFMHTree, MULTI_SIGNATURE, ONE_SIGNATURE
from repro.ifmh.vo import VerificationObject, build_verification_object
from repro.mesh.builder import SignatureMesh
from repro.mesh.structures import MeshVerificationObject
from repro.metrics.counters import Counters
from repro.queryproc.window import select_window

__all__ = ["Server", "QueryExecution"]


@dataclass
class QueryExecution:
    """A processed query: result, verification object and server-side cost."""

    query: AnalyticQuery
    result: QueryResult
    verification_object: Union[VerificationObject, MeshVerificationObject]
    counters: Counters

    @property
    def nodes_traversed(self) -> int:
        """ADS nodes (or mesh cells) the server touched for this query."""
        return self.counters.nodes_traversed


class Server:
    """The cloud server of the three-party outsourcing model."""

    def __init__(self, package: ServerPackage):
        self.package = package
        self.dataset = package.dataset
        self.ads = package.ads
        self.scheme = package.public_parameters.scheme
        self.template = package.public_parameters.template
        self.counters = Counters()

    # ----------------------------------------------------------- execution
    def execute(self, query: AnalyticQuery, counters: Optional[Counters] = None) -> QueryExecution:
        """Process a query and build its verification object."""
        query.validate(self.template.dimension)
        per_query = counters if counters is not None else Counters()
        if self.scheme == SIGNATURE_MESH:
            result, vo = self._execute_mesh(query, per_query)
        else:
            result, vo = self._execute_ifmh(query, per_query)
        self.counters.merge(per_query)
        return QueryExecution(
            query=query, result=result, verification_object=vo, counters=per_query
        )

    def _execute_ifmh(
        self, query: AnalyticQuery, counters: Counters
    ) -> tuple[QueryResult, VerificationObject]:
        tree = self.ads
        if not isinstance(tree, IFMHTree):  # pragma: no cover - defensive
            raise QueryProcessingError("server package scheme does not match its ADS")
        trace = tree.search(query.weights, counters=counters)
        leaf = trace.leaf
        scores = [function.evaluate(query.weights) for function in leaf.sorted_functions]
        window = select_window(query, scores)
        records = [
            tree.records_by_id[leaf.sorted_functions[position].index]
            for position in window.indices()
        ]
        vo = build_verification_object(tree, trace, window, counters=counters)
        return QueryResult(records=tuple(records)), vo

    def _execute_mesh(
        self, query: AnalyticQuery, counters: Counters
    ) -> tuple[QueryResult, MeshVerificationObject]:
        mesh = self.ads
        if not isinstance(mesh, SignatureMesh):  # pragma: no cover - defensive
            raise QueryProcessingError("server package scheme does not match its ADS")
        return mesh.process_query(query, counters=counters)

    # ------------------------------------------------------------ metadata
    @property
    def supported_schemes(self) -> tuple[str, ...]:
        return (ONE_SIGNATURE, MULTI_SIGNATURE, SIGNATURE_MESH)
