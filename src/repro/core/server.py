"""The cloud server: query processing and verification-object construction.

The server is *untrusted*: it holds the database and the owner-built ADS,
answers analytic queries and attaches a verification object to every result.
Its cost (the number of ADS nodes / mesh cells it touches per query) is the
paper's Fig. 6 metric and is tracked on a per-query :class:`Counters`.

Counter semantics
-----------------
Every query is processed against its own per-query :class:`Counters` (the
one returned on :class:`QueryExecution`), so concurrent callers never see
each other's costs.  ``Server.counters`` is the *cumulative* total across
every query the server has served; it is only ever mutated under an internal
lock, so :meth:`Server.execute` and :meth:`Server.execute_batch` are safe to
call from multiple threads.

Hot path
--------
IFMH scoring uses the per-leaf coefficient matrices cached by
:meth:`repro.ifmh.IFMHTree.leaf_scores` (one ``A @ w + b`` matvec instead of
a Python loop) plus a bounded LRU score cache keyed on ``(subdomain,
weights)``.  :meth:`Server.execute_batch` additionally groups queries that
share a weight vector so the subdomain search and the scoring run once per
distinct weight vector instead of once per query.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.errors import QueryProcessingError
from repro.core.owner import ServerPackage, SIGNATURE_MESH
from repro.core.queries import AnalyticQuery
from repro.core.results import QueryResult
from repro.ifmh.ifmh_tree import IFMHTree, MULTI_SIGNATURE, ONE_SIGNATURE
from repro.ifmh.vo import VerificationObject, build_verification_object
from repro.mesh.builder import SignatureMesh
from repro.mesh.structures import MeshVerificationObject
from repro.metrics.counters import Counters
from repro.queryproc.window import select_window

__all__ = ["Server", "QueryExecution"]

#: Default number of ``(subdomain, weights) -> scores`` entries kept by the
#: server-side score cache.
DEFAULT_SCORE_CACHE_SIZE = 1024


@dataclass
class QueryExecution:
    """A processed query: result, verification object and server-side cost."""

    query: AnalyticQuery
    result: QueryResult
    verification_object: Union[VerificationObject, MeshVerificationObject]
    counters: Counters

    @property
    def nodes_traversed(self) -> int:
        """ADS nodes (or mesh cells) the server touched for this query."""
        return self.counters.nodes_traversed


class Server:
    """The cloud server of the three-party outsourcing model."""

    def __init__(self, package: ServerPackage, score_cache_size: int = DEFAULT_SCORE_CACHE_SIZE):
        self.package = package
        self.dataset = package.dataset
        self.ads = package.ads
        self.scheme = package.public_parameters.scheme
        self.template = package.public_parameters.template
        self.counters = Counters()
        self._counters_lock = threading.Lock()
        self._score_cache_lock = threading.Lock()
        self._score_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._score_cache_size = score_cache_size
        self.score_cache_hits = 0
        self.score_cache_misses = 0

    @classmethod
    def from_artifact(
        cls,
        path,
        score_cache_size: int = DEFAULT_SCORE_CACHE_SIZE,
        *,
        base=None,
        expected_epoch: Optional[int] = None,
    ) -> "Server":
        """Cold-start a server from a published ADS artifact on disk.

        The artifact (written by :meth:`repro.core.owner.DataOwner.publish`)
        is integrity-checked and reconstructed without re-hashing anything;
        the resulting server answers queries with verdicts, verification
        objects and cost counters bit-identical to one handed the same ADS
        in process.  Raises
        :class:`~repro.core.errors.ConstructionError` for truncated,
        tampered or version-incompatible files.

        ``base`` names the full artifact a *delta* artifact was published
        against (required for deltas, rejected when it does not match).
        ``expected_epoch`` pins the ADS epoch the operator expects to
        serve: loading an artifact from any other epoch -- a stale
        pre-update file or a replayed old delta -- raises
        :class:`~repro.core.errors.ConstructionError` instead of silently
        serving data that clients will reject.
        """
        from repro.core.artifact import load_artifact
        from repro.core.errors import ConstructionError

        loaded = load_artifact(path, base=base)
        if expected_epoch is not None:
            epoch = int(loaded.meta.get("epoch", 0))
            if epoch != expected_epoch:
                raise ConstructionError(
                    f"ADS artifact {path!r} carries epoch {epoch}, but this server "
                    f"expects epoch {expected_epoch}; stale or replayed artifact"
                )
        return cls(loaded.package, score_cache_size=score_cache_size)

    # ----------------------------------------------------------- execution
    def execute(self, query: AnalyticQuery, counters: Optional[Counters] = None) -> QueryExecution:
        """Process a query and build its verification object.

        The returned execution carries an isolated per-query counter; the
        server's cumulative :attr:`counters` are updated under a lock.
        """
        query.validate(self.template.dimension)
        per_query = counters if counters is not None else Counters()
        execute = (
            self._execute_mesh if self.scheme == SIGNATURE_MESH else self._execute_ifmh
        )
        try:
            result, vo = execute(query, per_query)
        except QueryProcessingError as err:
            err.annotate(query_kind=query.kind, scheme=self.scheme, epoch=self.epoch)
            raise
        with self._counters_lock:
            self.counters.merge(per_query)
        return QueryExecution(
            query=query, result=result, verification_object=vo, counters=per_query
        )

    def execute_batch(self, queries: Sequence[AnalyticQuery]) -> List[QueryExecution]:
        """Process many queries, amortizing shared work across the batch.

        Queries that share a weight vector reuse one subdomain search and one
        score computation.  Every query still gets its own isolated
        :class:`Counters` (charged the full cost of the search it used, as if
        executed alone); the cumulative :attr:`counters` are merged once for
        the whole batch, under the lock.
        """
        for query in queries:
            query.validate(self.template.dimension)
        try:
            executions = (
                [self._execute_one_mesh(query) for query in queries]
                if self.scheme == SIGNATURE_MESH
                else self._execute_batch_ifmh(queries)
            )
        except QueryProcessingError as err:
            err.annotate(scheme=self.scheme, epoch=self.epoch)
            raise
        batch_total = Counters()
        for execution in executions:
            batch_total.merge(execution.counters)
        with self._counters_lock:
            self.counters.merge(batch_total)
        return executions

    # ---------------------------------------------------------------- IFMH
    def _ifmh_tree(self) -> IFMHTree:
        tree = self.ads
        if not isinstance(tree, IFMHTree):  # pragma: no cover - defensive
            raise QueryProcessingError("server package scheme does not match its ADS")
        return tree

    def _cached_scores(self, tree: IFMHTree, leaf, weights: tuple) -> Sequence[float]:
        """Leaf scores via the bounded LRU cache keyed on (subdomain, weights)."""
        key = (leaf.subdomain_id, weights)
        with self._score_cache_lock:
            cached = self._score_cache.get(key)
            if cached is not None:
                self._score_cache.move_to_end(key)
                self.score_cache_hits += 1
                return cached
            self.score_cache_misses += 1
        scores = tuple(tree.leaf_scores(leaf, weights).tolist())
        with self._score_cache_lock:
            self._score_cache[key] = scores
            while len(self._score_cache) > self._score_cache_size:
                self._score_cache.popitem(last=False)
        return scores

    @staticmethod
    def _finish_ifmh_query(
        tree: IFMHTree,
        trace,
        scores,
        query: AnalyticQuery,
        counters: Counters,
    ) -> tuple[QueryResult, VerificationObject]:
        """Window selection, record lookup and VO construction for one query."""
        leaf = trace.leaf
        window = select_window(query, scores)
        # The FMH-tree's sorted_items sequence is the subdomain's record
        # list in sorted order (a lazy view over the shared permutation
        # array on the batched path) -- the same objects the per-function
        # records_by_id lookup would return, minus one indirection.
        sorted_records = leaf.fmh_tree.sorted_items
        records = [sorted_records[position] for position in window.indices()]
        vo = build_verification_object(tree, trace, window, counters=counters)
        return QueryResult(records=tuple(records)), vo

    def _execute_ifmh(
        self, query: AnalyticQuery, counters: Counters
    ) -> tuple[QueryResult, VerificationObject]:
        tree = self._ifmh_tree()
        trace = tree.search(query.weights, counters=counters)
        scores = self._cached_scores(tree, trace.leaf, tuple(query.weights))
        return self._finish_ifmh_query(tree, trace, scores, query, counters)

    def _execute_batch_ifmh(self, queries: Sequence[AnalyticQuery]) -> List[QueryExecution]:
        tree = self._ifmh_tree()
        # One search + one score computation per distinct weight vector.
        shared: Dict[tuple, tuple] = {}
        executions: List[QueryExecution] = []
        for query in queries:
            weights = tuple(query.weights)
            if weights not in shared:
                search_counters = Counters()
                trace = tree.search(weights, counters=search_counters)
                scores = self._cached_scores(tree, trace.leaf, weights)
                shared[weights] = (trace, scores, search_counters)
            trace, scores, search_counters = shared[weights]
            # Charge each query the search cost it would have paid alone.
            per_query = search_counters.copy()
            result, vo = self._finish_ifmh_query(tree, trace, scores, query, per_query)
            executions.append(
                QueryExecution(
                    query=query,
                    result=result,
                    verification_object=vo,
                    counters=per_query,
                )
            )
        return executions

    # ---------------------------------------------------------------- mesh
    def _execute_one_mesh(self, query: AnalyticQuery) -> QueryExecution:
        per_query = Counters()
        result, vo = self._execute_mesh(query, per_query)
        return QueryExecution(
            query=query, result=result, verification_object=vo, counters=per_query
        )

    def _execute_mesh(
        self, query: AnalyticQuery, counters: Counters
    ) -> tuple[QueryResult, MeshVerificationObject]:
        mesh = self.ads
        if not isinstance(mesh, SignatureMesh):  # pragma: no cover - defensive
            raise QueryProcessingError("server package scheme does not match its ADS")
        return mesh.process_query(query, counters=counters)

    # ------------------------------------------------------------ metadata
    @property
    def epoch(self) -> int:
        """The ADS epoch this server is serving (bound into signatures)."""
        return self.package.public_parameters.epoch

    @property
    def supported_schemes(self) -> tuple[str, ...]:
        return (ONE_SIGNATURE, MULTI_SIGNATURE, SIGNATURE_MESH)
