"""The cloud server: query processing and verification-object construction.

The server is *untrusted*: it holds the database and the owner-built ADS,
answers analytic queries and attaches a verification object to every result.
Its cost (the number of ADS nodes / mesh cells it touches per query) is the
paper's Fig. 6 metric and is tracked on a per-query :class:`Counters`.

Counter semantics
-----------------
Every query is processed against its own per-query :class:`Counters` (the
one returned on :class:`QueryExecution`), so concurrent callers never see
each other's costs.  ``Server.counters`` is the *cumulative* total across
every query the server has served; it is only ever mutated under an internal
lock, so :meth:`Server.execute` and :meth:`Server.execute_batch` are safe to
call from multiple threads.

Hot path
--------
IFMH scoring uses the per-leaf coefficient matrices cached by
:meth:`repro.ifmh.IFMHTree.leaf_scores` (one ``A @ w + b`` matvec instead of
a Python loop) plus a bounded LRU score cache keyed on ``(subdomain,
weights)``.  :meth:`Server.execute_batch` additionally groups queries that
share a weight vector so the subdomain search and the scoring run once per
distinct weight vector instead of once per query.

Live epoch hot-swap
-------------------
Everything epoch-specific -- package, dataset, ADS, scheme, template and
the score cache -- lives on one internal :class:`_EpochState` object, and
every query captures a reference to the current state **once** on entry.
:meth:`Server.swap_epoch` builds a complete replacement state and installs
it with a single attribute assignment: queries in flight at swap time
finish on the old epoch's state (their results still verify against the
old public parameters), queries arriving after the swap see only the new
one, and no query is ever dropped or served a half-swapped mixture.  The
score cache is part of the state, so stale scores can never leak across
epochs.  Cumulative counters and cache statistics are server-lifetime and
survive swaps.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.errors import QueryProcessingError
from repro.core.owner import ServerPackage, SIGNATURE_MESH
from repro.core.queries import AnalyticQuery
from repro.core.results import QueryResult
from repro.ifmh.ifmh_tree import IFMHTree, MULTI_SIGNATURE, ONE_SIGNATURE
from repro.ifmh.vo import VerificationObject, build_verification_object
from repro.mesh.builder import SignatureMesh
from repro.mesh.structures import MeshVerificationObject
from repro.metrics.counters import Counters
from repro.queryproc.window import select_window

__all__ = ["Server", "QueryExecution", "SwapReport"]

#: Default number of ``(subdomain, weights) -> scores`` entries kept by the
#: server-side score cache.
DEFAULT_SCORE_CACHE_SIZE = 1024


class _EpochState:
    """One epoch's complete serving state.

    Queries capture a reference on entry and never look back at the
    server, so :meth:`Server.swap_epoch` can replace the whole state
    atomically while they run.  The score cache lives here (not on the
    server) because cached scores are only valid for this epoch's ADS.
    """

    __slots__ = (
        "package",
        "dataset",
        "ads",
        "scheme",
        "template",
        "score_cache",
        "score_cache_size",
        "cache_lock",
    )

    def __init__(self, package: ServerPackage, score_cache_size: int):
        self.package = package
        self.dataset = package.dataset
        self.ads = package.ads
        self.scheme = package.public_parameters.scheme
        self.template = package.public_parameters.template
        self.score_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        self.score_cache_size = score_cache_size
        self.cache_lock = threading.Lock()

    @property
    def epoch(self) -> int:
        return self.package.public_parameters.epoch


@dataclass(frozen=True)
class SwapReport:
    """Outcome of one :meth:`Server.swap_epoch` call."""

    old_epoch: int
    new_epoch: int
    scheme: str


@dataclass
class QueryExecution:
    """A processed query: result, verification object and server-side cost."""

    query: AnalyticQuery
    result: QueryResult
    verification_object: Union[VerificationObject, MeshVerificationObject]
    counters: Counters

    @property
    def nodes_traversed(self) -> int:
        """ADS nodes (or mesh cells) the server touched for this query."""
        return self.counters.nodes_traversed


class Server:
    """The cloud server of the three-party outsourcing model."""

    def __init__(self, package: ServerPackage, score_cache_size: int = DEFAULT_SCORE_CACHE_SIZE):
        self._state = _EpochState(package, score_cache_size)
        self._swap_lock = threading.Lock()
        self.counters = Counters()
        self._counters_lock = threading.Lock()
        self._cache_stats_lock = threading.Lock()
        self.score_cache_hits = 0
        self.score_cache_misses = 0
        self.epochs_served = 1

    # The epoch-specific attributes read through the *current* state; code
    # that must stay on one epoch for a whole query captures ``self._state``
    # once instead of using these.
    @property
    def package(self) -> ServerPackage:
        return self._state.package

    @property
    def dataset(self):
        return self._state.dataset

    @property
    def ads(self) -> Union[IFMHTree, SignatureMesh]:
        return self._state.ads

    @property
    def scheme(self) -> str:
        return self._state.scheme

    @property
    def template(self):
        return self._state.template

    @property
    def _score_cache(self) -> "OrderedDict[tuple, tuple]":
        return self._state.score_cache

    @property
    def _score_cache_size(self) -> int:
        return self._state.score_cache_size

    @classmethod
    def from_artifact(
        cls,
        path,
        score_cache_size: int = DEFAULT_SCORE_CACHE_SIZE,
        *,
        base=None,
        expected_epoch: Optional[int] = None,
    ) -> "Server":
        """Cold-start a server from a published ADS artifact on disk.

        The artifact (written by :meth:`repro.core.owner.DataOwner.publish`)
        is integrity-checked and reconstructed without re-hashing anything;
        the resulting server answers queries with verdicts, verification
        objects and cost counters bit-identical to one handed the same ADS
        in process.  Raises
        :class:`~repro.core.errors.ConstructionError` for truncated,
        tampered or version-incompatible files.

        ``base`` names the full artifact a *delta* artifact was published
        against (required for deltas, rejected when it does not match).
        ``expected_epoch`` pins the ADS epoch the operator expects to
        serve: loading an artifact from any other epoch -- a stale
        pre-update file or a replayed old delta -- raises
        :class:`~repro.core.errors.ConstructionError` instead of silently
        serving data that clients will reject.
        """
        from repro.core.artifact import load_artifact
        from repro.core.errors import ConstructionError

        loaded = load_artifact(path, base=base)
        if expected_epoch is not None:
            epoch = int(loaded.meta.get("epoch", 0))
            if epoch != expected_epoch:
                raise ConstructionError(
                    f"ADS artifact {path!r} carries epoch {epoch}, but this server "
                    f"expects epoch {expected_epoch}; stale or replayed artifact"
                )
        return cls(loaded.package, score_cache_size=score_cache_size)

    # ----------------------------------------------------------- execution
    def execute(self, query: AnalyticQuery, counters: Optional[Counters] = None) -> QueryExecution:
        """Process a query and build its verification object.

        The returned execution carries an isolated per-query counter; the
        server's cumulative :attr:`counters` are updated under a lock.
        """
        state = self._state  # one atomic capture; swaps cannot split this query
        query.validate(state.template.dimension)
        per_query = counters if counters is not None else Counters()
        execute = (
            self._execute_mesh if state.scheme == SIGNATURE_MESH else self._execute_ifmh
        )
        try:
            result, vo = execute(state, query, per_query)
        except QueryProcessingError as err:
            err.annotate(query_kind=query.kind, scheme=state.scheme, epoch=state.epoch)
            raise
        with self._counters_lock:
            self.counters.merge(per_query)
        return QueryExecution(
            query=query, result=result, verification_object=vo, counters=per_query
        )

    def execute_batch(self, queries: Sequence[AnalyticQuery]) -> List[QueryExecution]:
        """Process many queries, amortizing shared work across the batch.

        Queries that share a weight vector reuse one subdomain search and one
        score computation.  Every query still gets its own isolated
        :class:`Counters` (charged the full cost of the search it used, as if
        executed alone); the cumulative :attr:`counters` are merged once for
        the whole batch, under the lock.
        """
        state = self._state  # the whole batch runs on one epoch
        for query in queries:
            query.validate(state.template.dimension)
        try:
            executions = (
                [self._execute_one_mesh(state, query) for query in queries]
                if state.scheme == SIGNATURE_MESH
                else self._execute_batch_ifmh(state, queries)
            )
        except QueryProcessingError as err:
            err.annotate(scheme=state.scheme, epoch=state.epoch)
            raise
        batch_total = Counters()
        for execution in executions:
            batch_total.merge(execution.counters)
        with self._counters_lock:
            self.counters.merge(batch_total)
        return executions

    # ---------------------------------------------------------------- IFMH
    @staticmethod
    def _ifmh_tree(state: _EpochState) -> IFMHTree:
        tree = state.ads
        if not isinstance(tree, IFMHTree):  # pragma: no cover - defensive
            raise QueryProcessingError("server package scheme does not match its ADS")
        return tree

    def _cached_scores(
        self, state: _EpochState, tree: IFMHTree, leaf, weights: tuple
    ) -> Sequence[float]:
        """Leaf scores via the state's bounded LRU cache keyed on (subdomain, weights)."""
        key = (leaf.subdomain_id, weights)
        with state.cache_lock:
            cached = state.score_cache.get(key)
            if cached is not None:
                state.score_cache.move_to_end(key)
        with self._cache_stats_lock:
            if cached is not None:
                self.score_cache_hits += 1
            else:
                self.score_cache_misses += 1
        if cached is not None:
            return cached
        scores = tuple(tree.leaf_scores(leaf, weights).tolist())
        with state.cache_lock:
            state.score_cache[key] = scores
            while len(state.score_cache) > state.score_cache_size:
                state.score_cache.popitem(last=False)
        return scores

    @staticmethod
    def _finish_ifmh_query(
        tree: IFMHTree,
        trace,
        scores,
        query: AnalyticQuery,
        counters: Counters,
    ) -> tuple[QueryResult, VerificationObject]:
        """Window selection, record lookup and VO construction for one query."""
        leaf = trace.leaf
        window = select_window(query, scores)
        # The FMH-tree's sorted_items sequence is the subdomain's record
        # list in sorted order (a lazy view over the shared permutation
        # array on the batched path) -- the same objects the per-function
        # records_by_id lookup would return, minus one indirection.
        sorted_records = leaf.fmh_tree.sorted_items
        records = [sorted_records[position] for position in window.indices()]
        vo = build_verification_object(tree, trace, window, counters=counters)
        return QueryResult(records=tuple(records)), vo

    def _execute_ifmh(
        self, state: _EpochState, query: AnalyticQuery, counters: Counters
    ) -> tuple[QueryResult, VerificationObject]:
        tree = self._ifmh_tree(state)
        trace = tree.search(query.weights, counters=counters)
        scores = self._cached_scores(state, tree, trace.leaf, tuple(query.weights))
        return self._finish_ifmh_query(tree, trace, scores, query, counters)

    def _execute_batch_ifmh(
        self, state: _EpochState, queries: Sequence[AnalyticQuery]
    ) -> List[QueryExecution]:
        tree = self._ifmh_tree(state)
        # One search + one score computation per distinct weight vector.
        shared: Dict[tuple, tuple] = {}
        executions: List[QueryExecution] = []
        for query in queries:
            weights = tuple(query.weights)
            if weights not in shared:
                search_counters = Counters()
                trace = tree.search(weights, counters=search_counters)
                scores = self._cached_scores(state, tree, trace.leaf, weights)
                shared[weights] = (trace, scores, search_counters)
            trace, scores, search_counters = shared[weights]
            # Charge each query the search cost it would have paid alone.
            per_query = search_counters.copy()
            result, vo = self._finish_ifmh_query(tree, trace, scores, query, per_query)
            executions.append(
                QueryExecution(
                    query=query,
                    result=result,
                    verification_object=vo,
                    counters=per_query,
                )
            )
        return executions

    # ---------------------------------------------------------------- mesh
    def _execute_one_mesh(self, state: _EpochState, query: AnalyticQuery) -> QueryExecution:
        per_query = Counters()
        result, vo = self._execute_mesh(state, query, per_query)
        return QueryExecution(
            query=query, result=result, verification_object=vo, counters=per_query
        )

    def _execute_mesh(
        self, state: _EpochState, query: AnalyticQuery, counters: Counters
    ) -> tuple[QueryResult, MeshVerificationObject]:
        mesh = state.ads
        if not isinstance(mesh, SignatureMesh):  # pragma: no cover - defensive
            raise QueryProcessingError("server package scheme does not match its ADS")
        return mesh.process_query(query, counters=counters)

    # ------------------------------------------------------------- hot swap
    def swap_epoch(
        self,
        package: ServerPackage,
        *,
        score_cache_size: Optional[int] = None,
    ) -> SwapReport:
        """Switch to a newer epoch's package without stopping service.

        Builds a complete replacement serving state (package, dataset, ADS,
        template and a **fresh** score cache) and installs it atomically.
        Queries already executing keep the state they captured on entry and
        finish on the old epoch -- their results still verify against the
        old public parameters -- while every later query runs entirely on
        the new epoch.  No query is dropped and none sees a half-swapped
        mixture.

        The replacement must be the same scheme and a **strictly newer**
        epoch; swapping sideways or backwards raises
        :class:`~repro.core.errors.ConstructionError` (an operator pushing
        a stale artifact must never silently regress a live server).
        """
        from repro.core.errors import ConstructionError

        parameters = package.public_parameters
        with self._swap_lock:
            current = self._state
            if parameters.scheme != current.scheme:
                raise ConstructionError(
                    f"cannot hot-swap a {current.scheme!r} server to scheme "
                    f"{parameters.scheme!r}; replace the server instead"
                )
            if parameters.epoch <= current.epoch:
                raise ConstructionError(
                    f"cannot hot-swap from epoch {current.epoch} to epoch "
                    f"{parameters.epoch}; the replacement must be strictly newer"
                )
            size = (
                score_cache_size
                if score_cache_size is not None
                else current.score_cache_size
            )
            report = SwapReport(
                old_epoch=current.epoch,
                new_epoch=parameters.epoch,
                scheme=parameters.scheme,
            )
            self._state = _EpochState(package, size)
            self.epochs_served += 1
        return report

    def swap_epoch_from_artifact(
        self,
        path,
        *,
        base=None,
        expected_epoch: Optional[int] = None,
        score_cache_size: Optional[int] = None,
    ) -> SwapReport:
        """Hot-swap to the epoch published in an artifact on disk.

        The artifact loads and integrity-checks **before** the swap lock is
        taken, so a corrupt or stale file never disturbs live serving; the
        same ``base`` / ``expected_epoch`` rules as
        :meth:`from_artifact` apply.
        """
        from repro.core.artifact import load_artifact
        from repro.core.errors import ConstructionError

        loaded = load_artifact(path, base=base)
        if expected_epoch is not None:
            epoch = int(loaded.meta.get("epoch", 0))
            if epoch != expected_epoch:
                raise ConstructionError(
                    f"ADS artifact {path!r} carries epoch {epoch}, but this swap "
                    f"expects epoch {expected_epoch}; stale or replayed artifact"
                )
        return self.swap_epoch(loaded.package, score_cache_size=score_cache_size)

    # ------------------------------------------------------------ metadata
    @property
    def epoch(self) -> int:
        """The ADS epoch this server is serving (bound into signatures)."""
        return self._state.epoch

    @property
    def supported_schemes(self) -> tuple[str, ...]:
        return (ONE_SIGNATURE, MULTI_SIGNATURE, SIGNATURE_MESH)
