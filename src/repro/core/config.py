"""Unified system configuration for the outsourcing pipeline.

Before this module existed, every layer of the build path --
:meth:`repro.core.protocol.OutsourcedSystem.setup`,
:class:`repro.core.owner.DataOwner`, :class:`repro.ifmh.IFMHTree`,
:class:`repro.mesh.builder.SignatureMesh` and the benchmark harness --
re-declared the same sprawl of eight-plus keyword arguments and forwarded
them by hand.  :class:`SystemConfig` replaces that with one frozen,
validated object that is threaded through the stack and echoed verbatim
into published ADS artifacts (:mod:`repro.core.artifact`), so a server
cold-started from disk knows exactly how its ADS was built.

Every constructor that takes ``config=`` also keeps its legacy keyword
arguments as a thin shim (see :func:`resolve_config`): passing the old
kwargs builds a :class:`SystemConfig` behind the scenes, and passing both a
config and explicit kwargs applies the kwargs as overrides on top of the
config.  Existing call sites therefore keep working unchanged.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.errors import ConstructionError

__all__ = [
    "ONE_SIGNATURE",
    "MULTI_SIGNATURE",
    "SIGNATURE_MESH",
    "SCHEMES",
    "BUILD_MODES",
    "SystemConfig",
    "resolve_config",
]

#: The two IFMH scheme names (mirrors :mod:`repro.ifmh.ifmh_tree`; declared
#: here as plain strings so the config module sits below every other layer).
ONE_SIGNATURE = "one-signature"
MULTI_SIGNATURE = "multi-signature"

#: Scheme name of the signature-mesh baseline.
SIGNATURE_MESH = "signature-mesh"

#: All supported verification schemes.
SCHEMES = (ONE_SIGNATURE, MULTI_SIGNATURE, SIGNATURE_MESH)

#: Supported I-tree construction strategies (mirrors
#: :data:`repro.itree.itree.BUILDERS`, declared here to avoid an import
#: cycle through the geometry stack).
BUILD_MODES = ("incremental", "bulk", "balanced-incremental", "auto")


@dataclass(frozen=True)
class SystemConfig:
    """Frozen build configuration of one outsourced system.

    Parameters
    ----------
    scheme:
        ``"one-signature"``, ``"multi-signature"`` or ``"signature-mesh"``.
    signature_algorithm:
        ``"rsa"`` (default), ``"dsa"`` or ``"hmac"`` (test-only).
    key_bits:
        Key-size override passed to the signature scheme (``None`` = the
        scheme's default).
    bind_intersections:
        IFMH hardening switch (see :class:`repro.ifmh.IFMHTree`).
    share_signatures:
        Mesh-only: enable the shared-signature optimization.
    build_mode:
        IFMH-only: I-tree construction strategy (``"auto"`` uses the
        vectorized bulk build for the univariate interval configuration and
        the paper's incremental insertion otherwise).
    hash_consing:
        IFMH-only: route FMH construction through the shared-structure
        Merkle engine.  Bit-identical either way, only the physical SHA-256
        work changes.
    batch_hashing:
        IFMH-only: level-order batched construction through the array
        arena.  Requires ``hash_consing``; when ``hash_consing`` is off the
        flag is normalized to ``False`` (the one place this implication is
        enforced -- constructors no longer re-derive it).
    tolerance:
        Geometry-engine tolerance.  ``None`` selects the engine's default;
        an explicit value -- **including 0.0** (exact comparisons) -- is
        honoured as given, closing the trap where the tolerance could only
        be set by hand-building a :class:`repro.geometry.engine.SplitEngine`.
    """

    scheme: str = ONE_SIGNATURE
    signature_algorithm: str = "rsa"
    key_bits: Optional[int] = None
    bind_intersections: bool = True
    share_signatures: bool = True
    build_mode: str = "auto"
    hash_consing: bool = True
    batch_hashing: bool = True
    tolerance: Optional[float] = None

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ConstructionError(
                f"unknown scheme {self.scheme!r}; expected one of {SCHEMES}"
            )
        if self.build_mode not in BUILD_MODES:
            raise ConstructionError(
                f"unknown build_mode {self.build_mode!r}; expected one of {BUILD_MODES}"
            )
        if not isinstance(self.signature_algorithm, str) or not self.signature_algorithm:
            raise ConstructionError(
                f"signature_algorithm must be a scheme name, got {self.signature_algorithm!r}"
            )
        if self.key_bits is not None and self.key_bits <= 0:
            raise ConstructionError(f"key_bits must be positive, got {self.key_bits}")
        if self.tolerance is not None and self.tolerance < 0:
            raise ConstructionError(f"tolerance must be >= 0, got {self.tolerance}")
        # The one implication of the build flags: batched level-order
        # hashing runs *inside* the shared-structure engine, so without
        # hash-consing there is nothing to batch.  Normalized here once so
        # no constructor needs its own ``batch_hashing and hash_consing``.
        if self.batch_hashing and not self.hash_consing:
            object.__setattr__(self, "batch_hashing", False)

    # -------------------------------------------------------------- helpers
    @property
    def is_ifmh(self) -> bool:
        """True for the two IFMH schemes (false for the mesh baseline)."""
        return self.scheme in (ONE_SIGNATURE, MULTI_SIGNATURE)

    def replace(self, **changes: Any) -> "SystemConfig":
        """A copy of this config with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def make_engine(self, domain) -> "object":
        """The geometry engine this configuration calls for.

        Delegates to :func:`repro.geometry.engine.make_engine`, honouring an
        explicit ``tolerance`` -- including ``0.0``.
        """
        from repro.geometry.engine import make_engine

        return make_engine(domain, tolerance=self.tolerance)

    # ------------------------------------------------------------ dict codec
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (echoed into published ADS artifacts)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SystemConfig":
        """Rebuild a config from :meth:`to_dict` output (extra keys rejected)."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConstructionError(
                f"unknown SystemConfig fields {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**data)


def resolve_config(config: Optional[SystemConfig], **overrides: Any) -> SystemConfig:
    """Merge a ``config=`` argument with legacy keyword arguments.

    ``overrides`` maps field names to explicitly passed legacy kwargs;
    entries whose value is ``None`` are treated as "not passed" (every
    legacy kwarg shim defaults to ``None``).  With no config, the overrides
    are applied on top of the :class:`SystemConfig` defaults; with a
    config, they are applied on top of that config -- so
    ``setup(config=cfg, scheme="multi-signature")`` means "cfg, but
    multi-signature".
    """
    given = {name: value for name, value in overrides.items() if value is not None}
    if config is None:
        return SystemConfig(**given)
    if not isinstance(config, SystemConfig):
        raise ConstructionError(
            f"config must be a SystemConfig, got {type(config).__name__}"
        )
    if not given:
        return config
    return config.replace(**given)
