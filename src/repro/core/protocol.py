"""End-to-end orchestration of the three-party outsourcing protocol.

:class:`OutsourcedSystem` wires a data owner, a cloud server and a client
together for the common case (one owner, one server, one verifying user) so
examples, tests and benchmarks can run the whole pipeline in two lines:

>>> system = OutsourcedSystem.setup(dataset, template, scheme="one-signature")
>>> execution, report = system.query_and_verify(TopKQuery(weights=(0.5,), k=3))
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.client import Client
from repro.core.owner import DataOwner
from repro.core.queries import AnalyticQuery
from repro.core.records import Dataset, UtilityTemplate
from repro.core.results import VerificationReport
from repro.core.server import QueryExecution, Server
from repro.geometry.engine import SplitEngine
from repro.metrics.counters import Counters

__all__ = ["OutsourcedSystem"]


@dataclass
class OutsourcedSystem:
    """A wired-up owner / server / client triple."""

    owner: DataOwner
    server: Server
    client: Client

    @classmethod
    def setup(
        cls,
        dataset: Dataset,
        template: UtilityTemplate,
        *,
        scheme: str = "one-signature",
        signature_algorithm: str = "rsa",
        key_bits: Optional[int] = None,
        bind_intersections: bool = True,
        share_signatures: bool = True,
        build_mode: str = "auto",
        hash_consing: bool = True,
        batch_hashing: bool = True,
        engine: Optional[SplitEngine] = None,
        rng: Optional[random.Random] = None,
    ) -> "OutsourcedSystem":
        """Build the owner's ADS, hand it to a server and create a client."""
        owner = DataOwner(
            dataset,
            template,
            scheme=scheme,
            signature_algorithm=signature_algorithm,
            key_bits=key_bits,
            bind_intersections=bind_intersections,
            share_signatures=share_signatures,
            build_mode=build_mode,
            hash_consing=hash_consing,
            batch_hashing=batch_hashing,
            engine=engine,
            rng=rng,
        )
        server = Server(owner.outsource())
        client = Client(owner.public_parameters())
        return cls(owner=owner, server=server, client=client)

    # ------------------------------------------------------------- pipeline
    def query_and_verify(
        self,
        query: AnalyticQuery,
        server_counters: Optional[Counters] = None,
        client_counters: Optional[Counters] = None,
    ) -> tuple[QueryExecution, VerificationReport]:
        """Run one query through the server and verify it at the client."""
        execution = self.server.execute(query, counters=server_counters)
        report = self.client.verify(
            query,
            execution.result,
            execution.verification_object,
            counters=client_counters,
        )
        return execution, report

    def query_and_verify_batch(
        self, queries: "Sequence[AnalyticQuery]"
    ) -> list[tuple[QueryExecution, VerificationReport]]:
        """Run a batch through ``Server.execute_batch`` and verify every result."""
        executions = self.server.execute_batch(queries)
        reports = self.client.verify_batch(executions)
        return list(zip(executions, reports))

    @property
    def scheme(self) -> str:
        return self.owner.scheme
