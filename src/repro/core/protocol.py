"""End-to-end orchestration of the three-party outsourcing protocol.

:class:`OutsourcedSystem` wires a data owner, a cloud server and a client
together for the common case (one owner, one server, one verifying user) so
examples, tests and benchmarks can run the whole pipeline in two lines:

>>> system = OutsourcedSystem.setup(dataset, template, scheme="one-signature")
>>> execution, report = system.query_and_verify(TopKQuery(weights=(0.5,), k=3))
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.client import Client
from repro.core.config import SystemConfig, resolve_config
from repro.core.owner import DataOwner
from repro.core.queries import AnalyticQuery
from repro.core.records import Dataset, UtilityTemplate
from repro.core.results import VerificationReport
from repro.core.server import QueryExecution, Server
from repro.geometry.engine import SplitEngine
from repro.metrics.counters import Counters

__all__ = ["OutsourcedSystem"]


@dataclass
class OutsourcedSystem:
    """A wired-up owner / server / client triple.

    ``owner`` is ``None`` for systems cold-started from a published
    artifact (:meth:`from_artifact`): the artifact carries no private key,
    so there is no owner to impersonate.
    """

    owner: Optional[DataOwner]
    server: Server
    client: Client

    @classmethod
    def setup(
        cls,
        dataset: Dataset,
        template: UtilityTemplate,
        *,
        config: Optional[SystemConfig] = None,
        scheme: Optional[str] = None,
        signature_algorithm: Optional[str] = None,
        key_bits: Optional[int] = None,
        bind_intersections: Optional[bool] = None,
        share_signatures: Optional[bool] = None,
        build_mode: Optional[str] = None,
        hash_consing: Optional[bool] = None,
        batch_hashing: Optional[bool] = None,
        tolerance: Optional[float] = None,
        engine: Optional[SplitEngine] = None,
        rng: Optional[random.Random] = None,
    ) -> "OutsourcedSystem":
        """Build the owner's ADS, hand it to a server and create a client.

        Configuration is one :class:`~repro.core.config.SystemConfig`
        threaded through every layer; the individual keyword arguments
        remain as a shim (without ``config`` they build one, with
        ``config`` they override its fields).  ``tolerance`` reaches the
        geometry engine through the config, so exact comparisons
        (``tolerance=0.0``) no longer require hand-building a
        :class:`~repro.geometry.engine.SplitEngine`.
        """
        config = resolve_config(
            config,
            scheme=scheme,
            signature_algorithm=signature_algorithm,
            key_bits=key_bits,
            bind_intersections=bind_intersections,
            share_signatures=share_signatures,
            build_mode=build_mode,
            hash_consing=hash_consing,
            batch_hashing=batch_hashing,
            tolerance=tolerance,
        )
        owner = DataOwner(dataset, template, config=config, engine=engine, rng=rng)
        server = Server(owner.outsource())
        client = Client(owner.public_parameters())
        return cls(owner=owner, server=server, client=client)

    @classmethod
    def from_artifact(cls, path, *, base=None) -> "OutsourcedSystem":
        """Cold-start a server/client pair from a published ADS artifact.

        The returned system has no :attr:`owner` (the private key never
        ships in an artifact); queries and verification work exactly as in
        an in-process system.  ``base`` names the full artifact a delta
        was published against (see :meth:`repro.core.owner.DataOwner.publish`).
        """
        from repro.core.artifact import load_artifact

        loaded = load_artifact(path, base=base)
        return cls(
            owner=None,
            server=Server(loaded.package),
            client=Client(loaded.public_parameters),
        )

    # ------------------------------------------------------------- pipeline
    def query_and_verify(
        self,
        query: AnalyticQuery,
        server_counters: Optional[Counters] = None,
        client_counters: Optional[Counters] = None,
    ) -> tuple[QueryExecution, VerificationReport]:
        """Run one query through the server and verify it at the client."""
        execution = self.server.execute(query, counters=server_counters)
        report = self.client.verify(
            query,
            execution.result,
            execution.verification_object,
            counters=client_counters,
        )
        return execution, report

    def query_and_verify_batch(
        self, queries: "Sequence[AnalyticQuery]"
    ) -> list[tuple[QueryExecution, VerificationReport]]:
        """Run a batch through ``Server.execute_batch`` and verify every result."""
        executions = self.server.execute_batch(queries)
        reports = self.client.verify_batch(executions)
        return list(zip(executions, reports))

    # ----------------------------------------------------------- resilience
    def resilient_client(
        self,
        replicas: Optional[Sequence[object]] = None,
        *,
        policy=None,
        seed: int = 0,
        clock=None,
        quarantine_threshold: int = 2,
        quarantine_period: float = 5.0,
    ):
        """A retry/failover front-end over this system's verifying client.

        ``replicas`` defaults to just this system's server; pass several
        servers (or :class:`~repro.resilience.faults.FaultInjector`
        wrappers) to serve from a pool.  See :mod:`repro.resilience`.
        """
        from repro.resilience.pool import ReplicaPool, ResilientClient

        pool = ReplicaPool(
            list(replicas) if replicas is not None else [self.server],
            clock=clock,
            quarantine_threshold=quarantine_threshold,
            quarantine_period=quarantine_period,
        )
        return ResilientClient(pool, self.client, policy, seed=seed)

    @classmethod
    def resilient_from_artifact(
        cls,
        path,
        replicas: int = 3,
        *,
        base=None,
        expected_epoch: Optional[int] = None,
        policy=None,
        seed: int = 0,
        clock=None,
        quarantine_threshold: int = 2,
        quarantine_period: float = 5.0,
    ):
        """Cold-start a resilient serving stack from one published artifact.

        Loads ``replicas`` independent servers plus one verifying client
        from the same artifact and returns the wired
        :class:`~repro.resilience.pool.ResilientClient`.
        """
        from repro.core.client import Client as _Client
        from repro.resilience.pool import ResilientClient, pool_from_artifact

        pool = pool_from_artifact(
            path,
            replicas,
            base=base,
            expected_epoch=expected_epoch,
            clock=clock,
            quarantine_threshold=quarantine_threshold,
            quarantine_period=quarantine_period,
        )
        return ResilientClient(pool, _Client.from_artifact(path), policy, seed=seed)

    @property
    def scheme(self) -> str:
        return self.server.scheme
