"""The data user (client): query-result verification.

The client holds only public information (the
:class:`~repro.core.owner.PublicParameters` published by the data owner) and
verifies every query result it receives from the untrusted server.  The
verification cost -- hash operations, signature verifications, wall-clock
time -- is the paper's Fig. 7 metric and is recorded on the returned
:class:`~repro.core.results.VerificationReport`.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Optional, Union

from repro.core.owner import PublicParameters, SIGNATURE_MESH
from repro.core.queries import AnalyticQuery
from repro.core.results import QueryResult, VerificationReport
from repro.ifmh.ifmh_tree import MULTI_SIGNATURE, ONE_SIGNATURE
from repro.ifmh.verify import verify_result
from repro.ifmh.vo import VerificationObject
from repro.mesh.structures import MeshVerificationObject
from repro.mesh.verify import verify_mesh_result
from repro.metrics.counters import Counters

__all__ = ["Client"]


class Client:
    """A data user that verifies the correctness of analytic query results."""

    def __init__(self, parameters: PublicParameters):
        self.parameters = parameters
        #: Cumulative verification cost across every verified result; mutated
        #: only under a lock so concurrent verifications are safe.
        self.counters = Counters()
        self._counters_lock = threading.Lock()

    @classmethod
    def from_artifact(cls, path) -> "Client":
        """Create a verifying client from a published ADS artifact.

        Only the public parameters (template, schema, scheme, public
        verification key) are read -- a client never needs the ADS arrays
        themselves -- but the artifact's integrity checksum is still
        verified, and a truncated or tampered file raises
        :class:`~repro.core.errors.ConstructionError`.
        """
        from repro.core.artifact import load_public_parameters

        return cls(load_public_parameters(path))

    # --------------------------------------------------------------- verify
    def verify(
        self,
        query: AnalyticQuery,
        result: QueryResult,
        verification_object: Union[VerificationObject, MeshVerificationObject],
        counters: Optional[Counters] = None,
    ) -> VerificationReport:
        """Verify a query result; returns a report, never raises."""
        per_query = counters if counters is not None else Counters()
        params = self.parameters
        if params.scheme == SIGNATURE_MESH:
            if not isinstance(verification_object, MeshVerificationObject):
                report = VerificationReport()
                report.record(
                    "vo-type",
                    False,
                    "expected a signature-mesh verification object",
                )
                return report
            report = verify_mesh_result(
                query,
                result,
                verification_object,
                template=params.template,
                attribute_names=params.attribute_names,
                verifier=params.verifier,
                counters=per_query,
                epoch=params.epoch,
            )
        elif params.scheme in (ONE_SIGNATURE, MULTI_SIGNATURE):
            if not isinstance(verification_object, VerificationObject):
                report = VerificationReport()
                report.record("vo-type", False, "expected an IFMH verification object")
                return report
            report = verify_result(
                query,
                result,
                verification_object,
                template=params.template,
                attribute_names=params.attribute_names,
                verifier=params.verifier,
                bind_intersections=params.bind_intersections,
                counters=per_query,
                epoch=params.epoch,
            )
        else:  # pragma: no cover - PublicParameters are built by DataOwner
            report = VerificationReport()
            report.record("scheme", False, f"unknown scheme {params.scheme!r}")
            return report
        with self._counters_lock:
            self.counters.merge(per_query)
        return report

    def verify_batch(self, executions: Iterable[object]) -> List[VerificationReport]:
        """Verify a batch of server executions (e.g. from ``execute_batch``).

        Accepts any iterable of objects carrying ``query``, ``result`` and
        ``verification_object`` attributes; each result is verified against
        its own per-query counter.
        """
        return [
            self.verify(e.query, e.result, e.verification_object)  # type: ignore[attr-defined]
            for e in executions
        ]

    def verify_or_raise(
        self,
        query: AnalyticQuery,
        result: QueryResult,
        verification_object: Union[VerificationObject, MeshVerificationObject],
    ) -> VerificationReport:
        """Like :meth:`verify` but raises :class:`VerificationError` on failure.

        The raised error names the failing checks (``err.failed_checks``)
        and carries the query kind, scheme and epoch as structured context.
        """
        report = self.verify(query, result, verification_object)
        report.raise_if_invalid(
            query_kind=query.kind,
            scheme=self.parameters.scheme,
            epoch=self.parameters.epoch,
        )
        return report
