"""Versioned on-disk ADS artifacts: publish once, cold-start anywhere.

The paper's outsourcing model separates a *one-time* owner-side ADS
construction from a long-lived, heavily-queried server.  This module makes
that separation real on disk: :func:`save_artifact` (usually called as
:meth:`repro.core.owner.DataOwner.publish`) writes a single ``.npz``-backed
bundle holding everything a server or client needs, and
:meth:`repro.core.server.Server.from_artifact` /
:meth:`repro.core.client.Client.from_artifact` reconstruct fully functional
parties from it with **zero re-hashing** -- roots, verification objects,
verdicts and both hash counters are bit-identical to an in-process build.

Format layout (one numpy ``.npz`` archive)
------------------------------------------
``meta``
    UTF-8 JSON header: magic + ``format_version``, the build's
    :class:`~repro.core.config.SystemConfig` echo, the public parameters
    (template, schema, scheme, public verification key), the I-tree builder
    that produced the shape, the owner's root signature (one-signature
    mode), the root-of-roots digest and informational counts.
``checksum``
    32-byte SHA-256 over the meta bytes plus every data array (name, shape
    and raw bytes).  Verified before anything is reconstructed.
``dataset_*``
    Record ids (int64), the attribute-value matrix (float64) and labels.
``ads_*``
    Scheme-specific arrays: for IFMH, the pre-order I-tree structure, the
    shared permutation array, the flat Merkle arena (digest matrix + child
    indices), per-subdomain root indices, intersection hashes and (multi
    mode) per-subdomain signatures; for the mesh, cells, flattened regions
    and the deduplicated pair-signature table.

Sharded arenas
--------------
The Merkle arena dominates artifact size (for IFMH it is Theta(n^2 log n)
digest rows).  ``save_artifact(..., arena_shards=k)`` splits the three
arena arrays into ``k`` contiguous row ranges written as sidecar ``.npz``
files next to the main artifact; the main bundle then omits the arena and
its header pins each sidecar's name, row count and payload checksum.
Because the header itself is covered by the main checksum, swapping or
truncating any shard is caught before reconstruction.  Sharded artifacts
use format version 3; loading transparently reassembles the arena from the
sidecars found next to the artifact.

Versioning policy
-----------------
``format_version`` is bumped on any incompatible layout change; loaders
accept exactly the versions they know (currently ``1``-``3``) and reject
anything newer with a clear error instead of misreading it.  Unknown
trailing arrays are ignored, so purely additive extensions may keep the
version.

Integrity
---------
Loading verifies (a) the whole-payload checksum and (b) that the stored
root-of-roots digest matches one recomputed from the loaded arrays, so a
truncated, bit-flipped or hand-edited artifact fails with
:class:`~repro.core.errors.ConstructionError` rather than serving wrong
answers.  These checks use plain (uncounted) SHA-256: they are file
integrity, not ADS hashing, and the loaded structures' hash counters stay
at zero.  Note the checks are *defence in depth* for operators -- a
malicious server is still caught by client-side verification, exactly as in
the paper's threat model.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile
from dataclasses import dataclass
import tempfile
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core.config import SIGNATURE_MESH, SystemConfig
from repro.core.errors import ConstructionError
from repro.core.owner import DataOwner, PublicParameters, ServerPackage
from repro.core.records import Dataset, Record
from repro.ifmh.ifmh_tree import IFMHTree
from repro.mesh.builder import SignatureMesh
from repro.metrics.counters import Counters

__all__ = [
    "ARTIFACT_MAGIC",
    "ARENA_SHARD_MAGIC",
    "ARTIFACT_FORMAT_VERSION",
    "LoadedArtifact",
    "PublishReport",
    "atomic_write_bytes",
    "save_artifact",
    "load_artifact",
    "load_public_parameters",
]

#: Identifies the file as an ADS artifact (first field of the JSON header).
ARTIFACT_MAGIC = "repro-ads-artifact"

#: Identifies a sidecar file holding one contiguous row range of the arena.
ARENA_SHARD_MAGIC = "repro-ads-arena-shard"

#: Current on-disk layout version (see the module docstring for the policy).
#: Version 2 adds the ``epoch`` header field and delta artifacts; version 1
#: files load unchanged (epoch defaults to 0).
ARTIFACT_FORMAT_VERSION = 2

#: Layout version stamped on artifacts whose arena lives in sidecar shards
#: (``save_artifact(..., arena_shards=k)``).  Self-contained publishes stay
#: at :data:`ARTIFACT_FORMAT_VERSION` so older loaders keep reading them.
SHARDED_FORMAT_VERSION = 3

#: Layout versions this loader understands.
SUPPORTED_FORMAT_VERSIONS = (1, 2, 3)

#: npz entry names reserved for the header (everything else is data).
_META_KEY = "meta"
_CHECKSUM_KEY = "checksum"

#: Arrays that only ever *grow* under incremental updates: a delta artifact
#: ships just their appended tail (entry name suffixed ``_tail``).
_APPEND_ONLY = ("ads_arena_digests", "ads_arena_left", "ads_arena_right")

#: Suffix marking a delta entry holding the appended rows of an
#: append-only array.
_TAIL_SUFFIX = "__tail"


@dataclass(frozen=True)
class PublishReport:
    """What :func:`save_artifact` actually wrote.

    ``mode`` is ``"full"`` or ``"delta"``.  When a delta was requested but
    its base artifact turned out to be missing or corrupt, the publish
    *repairs the chain* by writing a full artifact instead and records why
    in ``fallback_reason`` (``None`` for a publish that went as requested).
    """

    path: str
    mode: str
    epoch: int
    fallback_reason: Optional[str] = None


@dataclass(frozen=True)
class LoadedArtifact:
    """A fully reconstructed artifact: server package + its build config."""

    package: ServerPackage
    config: SystemConfig
    meta: Dict[str, Any]

    @property
    def dataset(self) -> Dataset:
        return self.package.dataset

    @property
    def ads(self) -> Union[IFMHTree, SignatureMesh]:
        return self.package.ads

    @property
    def public_parameters(self) -> PublicParameters:
        return self.package.public_parameters


# ---------------------------------------------------------------------------
# Integrity digests
# ---------------------------------------------------------------------------
def _payload_checksum(meta_bytes: bytes, arrays: Dict[str, np.ndarray]) -> bytes:
    """SHA-256 over the header and every data array (order-independent)."""
    digest = hashlib.sha256()  # reprolint: disable=RL001 -- integrity checksum, not a paper-counted hash
    digest.update(meta_bytes)
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.digest()


def _ifmh_roots_digest(
    arena_digests: np.ndarray, root_indices: np.ndarray, root_hash: bytes
) -> str:
    """Root-of-roots: every subdomain's FMH root digest plus the tree root."""
    digest = hashlib.sha256()  # reprolint: disable=RL001 -- integrity checksum, not a paper-counted hash
    digest.update(np.ascontiguousarray(arena_digests[root_indices]).tobytes())
    digest.update(root_hash)
    return digest.hexdigest()


def _mesh_roots_digest(signature_matrix: np.ndarray) -> str:
    """Mesh equivalent of the root-of-roots: the unique signature table."""
    return hashlib.sha256(  # reprolint: disable=RL001 -- integrity checksum, not a paper-counted hash
        np.ascontiguousarray(signature_matrix).tobytes()
    ).hexdigest()


# ---------------------------------------------------------------------------
# Atomic persistence
# ---------------------------------------------------------------------------
def atomic_write_bytes(path: Union[str, "os.PathLike[str]"], payload: bytes) -> None:
    """Crash-safe file publish: temp file + fsync + ``os.replace``.

    The payload is written to a temporary file in the *same directory*,
    flushed and fsynced, and only then renamed over ``path`` -- an atomic
    operation on POSIX filesystems.  A crash at any point therefore leaves
    either the complete old file or the complete new file at ``path``,
    never a truncated hybrid; a half-written temp file can never shadow a
    good artifact.  The directory entry is fsynced afterwards (best
    effort) so the rename itself survives a power cut.

    This is the single choke point every artifact/journal persistence path
    must write through (enforced by reprolint RL009).
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    descriptor, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "wb") as stream:
            stream.write(payload)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, target)
    except BaseException:
        # The publish failed before the rename: remove the temp file so a
        # crash-looking failure never litters half-written bundles next to
        # good artifacts.
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    try:
        directory_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory semantics
        return
    try:
        os.fsync(directory_fd)
    except OSError:  # pragma: no cover - filesystems without dir fsync
        pass
    finally:
        os.close(directory_fd)


def _encode_npz(entries: Dict[str, np.ndarray]) -> bytes:
    """Serialize the artifact entries to ``.npz`` bytes in memory."""
    buffer = io.BytesIO()
    np.savez(buffer, **entries)
    return buffer.getvalue()


# ---------------------------------------------------------------------------
# Save
# ---------------------------------------------------------------------------
def _dataset_arrays(dataset: Dataset) -> Dict[str, np.ndarray]:
    return {
        "dataset_record_ids": np.asarray(
            [record.record_id for record in dataset.records], dtype=np.int64
        ),
        "dataset_values": np.asarray(
            [record.values for record in dataset.records], dtype=np.float64
        ).reshape(len(dataset.records), len(dataset.attribute_names)),
        "dataset_labels": np.asarray(
            [record.label for record in dataset.records], dtype=np.str_
        ),
    }


def save_artifact(
    owner: DataOwner,
    path: Union[str, "os.PathLike[str]"],
    *,
    base: Union[str, "os.PathLike[str]", None] = None,
    arena_shards: Optional[int] = None,
) -> PublishReport:
    """Write the owner's finished ADS to ``path`` as a versioned artifact.

    The private signing key never leaves the owner: only signatures and the
    public verification key are written.  Prefer calling this through
    :meth:`repro.core.owner.DataOwner.publish`.

    The write is **atomic**: the bundle is serialized in memory, written to
    a same-directory temp file, fsynced and renamed over ``path``
    (:func:`atomic_write_bytes`), so a crash mid-publish can never tear an
    existing good artifact or leave a truncated file at the target path.

    With ``base`` (a previously published *full* artifact of this lineage)
    a **delta artifact** is written: arrays identical to the base are
    inherited by name, the append-only Merkle arena ships only its new
    tail, and the header pins the base's payload checksum and epoch --
    loading the delta against any other base (or replaying it) raises
    :class:`~repro.core.errors.ConstructionError`.  If the base file is
    missing or corrupt, the delta chain is *repaired* instead of broken:
    a full artifact is written and the returned :class:`PublishReport`
    carries the fallback reason.

    With ``arena_shards=k`` (``k >= 2``, IFMH scheme, filesystem paths
    only) the Merkle arena is written as ``k`` contiguous-row sidecar
    files next to the artifact instead of inline -- see the module
    docstring.  Sharded and delta publishes are mutually exclusive: a
    delta ships the arena *tail* inline by construction.
    """
    ads = owner.ads
    if arena_shards is not None:
        shard_count = int(arena_shards)
        if shard_count < 2:
            raise ConstructionError(
                f"arena_shards must be at least 2, got {shard_count}; publish "
                "without arena_shards for a self-contained artifact"
            )
        if base is not None:
            raise ConstructionError(
                "a delta publish (base=...) cannot also shard the arena: the "
                "delta ships only the arena tail, which is already one piece"
            )
        if not isinstance(ads, IFMHTree):
            raise ConstructionError(
                "arena_shards applies only to the IFMH scheme; the signature "
                "mesh has no Merkle arena to shard"
            )
        if hasattr(path, "write"):
            raise ConstructionError(
                "a sharded publish needs a filesystem path: the shard sidecars "
                "are written next to the artifact"
            )
    arrays = _dataset_arrays(owner.dataset)
    for name, array in ads.to_arrays().items():
        arrays[f"ads_{name}"] = array

    meta: Dict[str, Any] = {
        "magic": ARTIFACT_MAGIC,
        "format_version": ARTIFACT_FORMAT_VERSION,
        "config": owner.config.to_dict(),
        "public_parameters": owner.public_parameters().to_payload(),
        "attribute_names": list(owner.dataset.attribute_names),
        "epoch": int(owner.epoch),
        "counts": {
            "records": len(owner.dataset),
        },
    }
    if isinstance(ads, IFMHTree):
        meta["itree_builder"] = ads.itree.builder
        meta["root_signature"] = (
            ads.root_signature.hex() if ads.root_signature is not None else None
        )
        meta["roots_digest"] = _ifmh_roots_digest(
            arrays["ads_arena_digests"], arrays["ads_leaf_root_index"], ads.root_hash
        )
        meta["counts"]["subdomains"] = ads.subdomain_count
        meta["counts"]["arena_nodes"] = int(arrays["ads_arena_digests"].shape[0])
    else:
        meta["roots_digest"] = _mesh_roots_digest(arrays["ads_sig_bytes"])
        meta["counts"]["cells"] = ads.cell_count
        meta["counts"]["signatures"] = ads.signature_count

    if arena_shards is not None:
        # The roots digest and counts above were computed from the full
        # arrays; only now peel the arena off into sidecars.  Sidecars are
        # written first so a crash before the main rename leaves any
        # existing artifact untouched (stray sidecars are harmless).
        arrays, meta["arena_shards"] = _write_arena_shards(
            arrays, path, int(arena_shards)
        )
        meta["format_version"] = SHARDED_FORMAT_VERSION

    mode = "full"
    fallback_reason: Optional[str] = None
    if base is not None:
        try:
            arrays, delta_info = _delta_arrays(arrays, base)
        except (FileNotFoundError, ConstructionError) as error:
            # Delta-chain repair: a missing or corrupt base must not leave
            # the lineage unpublishable -- fall back to a self-contained
            # full artifact and report why.
            fallback_reason = f"delta base {_path_text(base)!r} unusable: {error}"
        else:
            meta["delta"] = delta_info
            mode = "delta"

    meta_bytes = json.dumps(meta, sort_keys=True).encode()
    checksum = np.frombuffer(_payload_checksum(meta_bytes, arrays), dtype=np.uint8)
    entries = {
        _META_KEY: np.frombuffer(meta_bytes, dtype=np.uint8),
        _CHECKSUM_KEY: checksum,
        **arrays,
    }
    payload = _encode_npz(entries)
    if hasattr(path, "write"):
        path.write(payload)
        return PublishReport(
            path="<buffer>", mode=mode, epoch=int(owner.epoch), fallback_reason=fallback_reason
        )
    # Serializing to memory first keeps the caller's path verbatim (np.savez
    # appends ".npz" to bare string paths) and lets the on-disk write be one
    # atomic temp-file + fsync + rename publish.
    atomic_write_bytes(path, payload)
    return PublishReport(
        path=os.fspath(path),
        mode=mode,
        epoch=int(owner.epoch),
        fallback_reason=fallback_reason,
    )


def _delta_arrays(
    arrays: Dict[str, np.ndarray], base
) -> tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Reduce the full array set to a delta against a published base file."""
    base_entries = _read_entries(base)
    base_meta = _parse_meta(base_entries, _path_text(base))
    if "delta" in base_meta:
        raise ConstructionError(
            "delta artifacts must be written against a full base artifact, "
            "not against another delta"
        )
    if "arena_shards" in base_meta:
        raise ConstructionError(
            "delta artifacts require a self-contained base; the base was "
            "published with arena_shards and holds no inline arena to append to"
        )
    inherited: list[str] = []
    delta: Dict[str, np.ndarray] = {}
    for name, array in arrays.items():
        base_array = base_entries.get(name)
        stored = np.asarray(array)
        if name in _APPEND_ONLY and base_array is not None:
            base_len = base_array.shape[0]
            if (
                stored.shape[0] >= base_len
                and stored.dtype == base_array.dtype
                and stored.shape[1:] == base_array.shape[1:]
                and np.array_equal(stored[:base_len], base_array)
            ):
                delta[name + _TAIL_SUFFIX] = stored[base_len:]
                continue
        if (
            base_array is not None
            and stored.dtype == base_array.dtype
            and np.array_equal(stored, base_array)
        ):
            inherited.append(name)
            continue
        delta[name] = stored
    return delta, {
        "base_checksum": base_entries[_CHECKSUM_KEY].tobytes().hex(),
        "base_epoch": int(base_meta.get("epoch", 0)),
        "inherited": sorted(inherited),
    }


def _shard_file_name(artifact_name: str, index: int, count: int) -> str:
    """Sidecar name for shard ``index``: ``<stem>.shard00-of-04.npz``."""
    stem = (
        artifact_name[: -len(".npz")]
        if artifact_name.endswith(".npz")
        else artifact_name
    )
    return f"{stem}.shard{index:02d}-of-{count:02d}.npz"


def _write_arena_shards(
    arrays: Dict[str, np.ndarray],
    path: Union[str, "os.PathLike[str]"],
    shard_count: int,
) -> tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Split the arena arrays into contiguous-row sidecar files.

    Every sidecar is itself a checksummed mini-artifact (magic + meta +
    payload checksum over its three array slices), written atomically; the
    returned header info pins each sidecar's name, row count and checksum
    so the main artifact's own checksum transitively covers the shards.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    artifact_name = os.path.basename(target)
    rows = int(arrays[_APPEND_ONLY[0]].shape[0])
    count = max(1, min(shard_count, rows))
    base_rows, extra = divmod(rows, count)
    files: list[str] = []
    row_counts: list[int] = []
    checksums: list[str] = []
    start = 0
    for index in range(count):
        stop = start + base_rows + (1 if index < extra else 0)
        shard_arrays = {
            name: np.ascontiguousarray(arrays[name][start:stop])
            for name in _APPEND_ONLY
        }
        shard_meta = {
            "magic": ARENA_SHARD_MAGIC,
            "format_version": SHARDED_FORMAT_VERSION,
            "artifact": artifact_name,
            "shard_index": index,
            "shard_count": count,
            "row_start": start,
            "row_stop": stop,
        }
        meta_bytes = json.dumps(shard_meta, sort_keys=True).encode()
        checksum = _payload_checksum(meta_bytes, shard_arrays)
        entries = {
            _META_KEY: np.frombuffer(meta_bytes, dtype=np.uint8),
            _CHECKSUM_KEY: np.frombuffer(checksum, dtype=np.uint8),
            **shard_arrays,
        }
        file_name = _shard_file_name(artifact_name, index, count)
        atomic_write_bytes(os.path.join(directory, file_name), _encode_npz(entries))
        files.append(file_name)
        row_counts.append(stop - start)
        checksums.append(checksum.hex())
        start = stop
    remaining = {
        name: array for name, array in arrays.items() if name not in _APPEND_ONLY
    }
    return remaining, {"files": files, "rows": row_counts, "checksums": checksums}


# ---------------------------------------------------------------------------
# Load
# ---------------------------------------------------------------------------
def _path_text(path) -> str:
    return os.fspath(path) if not hasattr(path, "read") else "<buffer>"


def _read_entries(path) -> Dict[str, np.ndarray]:
    try:
        with np.load(path, allow_pickle=False) as bundle:
            return {name: bundle[name] for name in bundle.files}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, ValueError, KeyError, OSError, EOFError) as error:
        raise ConstructionError(
            f"cannot read ADS artifact {_path_text(path)!r}: "
            f"file is not a readable artifact bundle ({error})"
        ) from None


def _parse_meta(entries: Dict[str, np.ndarray], path_text: str) -> Dict[str, Any]:
    if _META_KEY not in entries or _CHECKSUM_KEY not in entries:
        raise ConstructionError(
            f"ADS artifact {path_text!r} is missing its header; "
            "the file is truncated or not an artifact"
        )
    meta_bytes = entries[_META_KEY].tobytes()
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ConstructionError(
            f"ADS artifact {path_text!r} has a corrupt header ({error})"
        ) from None
    if meta.get("magic") != ARTIFACT_MAGIC:
        raise ConstructionError(
            f"{path_text!r} is not an ADS artifact (bad magic {meta.get('magic')!r})"
        )
    version = meta.get("format_version")
    if version not in SUPPORTED_FORMAT_VERSIONS:
        raise ConstructionError(
            f"ADS artifact {path_text!r} uses format version {version!r}; "
            f"this build reads versions {SUPPORTED_FORMAT_VERSIONS}"
        )
    arrays = {
        name: array
        for name, array in entries.items()
        if name not in (_META_KEY, _CHECKSUM_KEY)
    }
    expected = entries[_CHECKSUM_KEY].tobytes()
    actual = _payload_checksum(meta_bytes, arrays)
    if expected != actual:
        raise ConstructionError(
            f"ADS artifact {path_text!r} failed its integrity check "
            "(truncated or tampered); refusing to load"
        )
    return meta


def _rebuild_dataset(
    entries: Dict[str, np.ndarray], attribute_names: tuple[str, ...]
) -> Dataset:
    record_ids = np.asarray(entries["dataset_record_ids"], dtype=np.int64).tolist()
    values = np.asarray(entries["dataset_values"], dtype=np.float64).tolist()
    labels = [str(label) for label in entries["dataset_labels"].tolist()]
    records = [
        Record(record_id=record_id, values=tuple(row), label=label)
        for record_id, row, label in zip(record_ids, values, labels)
    ]
    return Dataset(attribute_names=attribute_names, records=records)


def _parse_shard_meta(entries: Dict[str, np.ndarray], path_text: str) -> Dict[str, Any]:
    """Header + integrity check for one arena-shard sidecar file."""
    if _META_KEY not in entries or _CHECKSUM_KEY not in entries:
        raise ConstructionError(
            f"arena shard {path_text!r} is missing its header; "
            "the file is truncated or not a shard"
        )
    meta_bytes = entries[_META_KEY].tobytes()
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ConstructionError(
            f"arena shard {path_text!r} has a corrupt header ({error})"
        ) from None
    if meta.get("magic") != ARENA_SHARD_MAGIC:
        raise ConstructionError(
            f"{path_text!r} is not an arena shard (bad magic {meta.get('magic')!r})"
        )
    arrays = {
        name: array
        for name, array in entries.items()
        if name not in (_META_KEY, _CHECKSUM_KEY)
    }
    if entries[_CHECKSUM_KEY].tobytes() != _payload_checksum(meta_bytes, arrays):
        raise ConstructionError(
            f"arena shard {path_text!r} failed its integrity check "
            "(truncated or tampered); refusing to load"
        )
    return meta


def _read_arena_shards(
    meta: Dict[str, Any], path, path_text: str
) -> Dict[str, np.ndarray]:
    """Reassemble the arena arrays from the sidecars pinned in the header."""
    if hasattr(path, "read"):
        raise ConstructionError(
            f"ADS artifact {path_text!r} stores its arena in sidecar shards "
            "and can only load from a filesystem path"
        )
    info = meta["arena_shards"]
    files = info.get("files") or []
    rows = info.get("rows") or []
    checksums = info.get("checksums") or []
    if not files or not (len(files) == len(rows) == len(checksums)):
        raise ConstructionError(
            f"ADS artifact {path_text!r} has a corrupt arena_shards header; "
            "refusing to load"
        )
    directory = os.path.dirname(os.fspath(path)) or "."
    parts: Dict[str, list] = {name: [] for name in _APPEND_ONLY}
    for index, (file_name, expected_rows, expected_checksum) in enumerate(
        zip(files, rows, checksums)
    ):
        shard_path = os.path.join(directory, file_name)
        try:
            shard_entries = _read_entries(shard_path)
        except FileNotFoundError:
            raise ConstructionError(
                f"ADS artifact {path_text!r}: arena shard {file_name!r} is "
                "missing next to the artifact"
            ) from None
        shard_meta = _parse_shard_meta(shard_entries, file_name)
        # The header pins each sidecar's checksum, so a valid-but-foreign
        # shard (say, from another publish of the same lineage) is refused.
        if shard_entries[_CHECKSUM_KEY].tobytes().hex() != expected_checksum:
            raise ConstructionError(
                f"ADS artifact {path_text!r}: arena shard {file_name!r} does "
                "not match the checksum pinned in the artifact header; "
                "refusing to load"
            )
        if int(shard_meta.get("shard_index", -1)) != index:
            raise ConstructionError(
                f"ADS artifact {path_text!r}: arena shard {file_name!r} "
                f"reports index {shard_meta.get('shard_index')!r}, expected "
                f"{index}; shard files were reordered or renamed"
            )
        for name in _APPEND_ONLY:
            part = shard_entries.get(name)
            if part is None or part.shape[0] != int(expected_rows):
                raise ConstructionError(
                    f"ADS artifact {path_text!r}: arena shard {file_name!r} "
                    f"does not carry the expected {expected_rows} rows of "
                    f"{name!r}; refusing to load"
                )
            parts[name].append(part)
    return {name: np.concatenate(parts[name], axis=0) for name in _APPEND_ONLY}


def _splice_delta(
    entries: Dict[str, np.ndarray],
    meta: Dict[str, Any],
    base,
    path_text: str,
) -> Dict[str, np.ndarray]:
    """Materialize a delta artifact's full array set against its base."""
    info = meta["delta"]
    if base is None:
        raise ConstructionError(
            f"ADS artifact {path_text!r} is a delta; pass the base artifact it "
            "was published against (base=...)"
        )
    base_entries = _read_entries(base)
    base_meta = _parse_meta(base_entries, _path_text(base))
    if "arena_shards" in base_meta:
        raise ConstructionError(
            f"ADS delta artifact {path_text!r} cannot be spliced onto "
            f"{_path_text(base)!r}: a sharded artifact holds no inline arena "
            "and is never a valid delta base"
        )
    actual = base_entries[_CHECKSUM_KEY].tobytes().hex()
    if actual != info.get("base_checksum"):
        raise ConstructionError(
            f"ADS delta artifact {path_text!r} was published against a different "
            f"base than {_path_text(base)!r}; refusing to splice"
        )
    base_epoch = int(base_meta.get("epoch", 0))
    epoch = int(meta.get("epoch", 0))
    if epoch <= base_epoch:
        raise ConstructionError(
            f"ADS delta artifact {path_text!r} carries epoch {epoch}, not newer "
            f"than its base's epoch {base_epoch}; stale or replayed delta"
        )
    spliced: Dict[str, np.ndarray] = {}
    for name in info.get("inherited", []):
        if name not in base_entries:
            raise ConstructionError(
                f"ADS delta artifact {path_text!r} inherits missing base array {name!r}"
            )
        spliced[name] = base_entries[name]
    for name, array in entries.items():
        if name in (_META_KEY, _CHECKSUM_KEY):
            continue
        if name.endswith(_TAIL_SUFFIX):
            stem = name[: -len(_TAIL_SUFFIX)]
            if stem not in base_entries:
                raise ConstructionError(
                    f"ADS delta artifact {path_text!r} appends to missing base "
                    f"array {stem!r}"
                )
            spliced[stem] = np.concatenate([base_entries[stem], array], axis=0)
        else:
            spliced[name] = array
    return spliced


def load_artifact(
    path: Union[str, "os.PathLike[str]"],
    *,
    base: Union[str, "os.PathLike[str]", None] = None,
) -> LoadedArtifact:
    """Load, integrity-check and reconstruct a published ADS artifact.

    Raises :class:`~repro.core.errors.ConstructionError` on truncated,
    tampered or version-incompatible files.  The reconstruction re-hashes
    nothing: the returned package's counters are zero and its structures
    answer queries bit-identically to the build that was published.

    Delta artifacts (published with ``publish(path, base=...)``) require
    the matching base file via ``base``; a wrong base or a delta whose
    epoch is not newer than the base's is refused.

    Sharded artifacts (published with ``arena_shards=k``) are reassembled
    from the sidecar files named in the header, which must sit next to the
    artifact; a missing, tampered or swapped shard is refused.
    """
    path_text = _path_text(path)
    entries = _read_entries(path)
    meta = _parse_meta(entries, path_text)
    if "arena_shards" in meta:
        entries = {**entries, **_read_arena_shards(meta, path, path_text)}
    if "delta" in meta:
        arrays = _splice_delta(entries, meta, base, path_text)
        entries = {**arrays, _META_KEY: entries[_META_KEY], _CHECKSUM_KEY: entries[_CHECKSUM_KEY]}
    config = SystemConfig.from_dict(meta["config"])
    parameters = PublicParameters.from_payload(meta["public_parameters"])
    epoch = int(meta.get("epoch", 0))
    dataset = _rebuild_dataset(entries, tuple(meta["attribute_names"]))
    ads_arrays = {
        name[len("ads_") :]: array
        for name, array in entries.items()
        if name.startswith("ads_")
    }

    if config.scheme == SIGNATURE_MESH:
        mesh = SignatureMesh.from_arrays(
            dataset,
            parameters.template,
            ads_arrays,
            config=config,
            counters=Counters(),
            epoch=epoch,
        )
        if _mesh_roots_digest(ads_arrays["sig_bytes"]) != meta.get("roots_digest"):
            raise ConstructionError(
                f"ADS artifact {path_text!r}: stored signature-table digest does not "
                "match the loaded arrays; refusing to load"
            )
        ads: Union[IFMHTree, SignatureMesh] = mesh
    else:
        root_signature_hex = meta.get("root_signature")
        tree = IFMHTree.from_arrays(
            dataset,
            parameters.template,
            ads_arrays,
            config=config,
            root_signature=(
                bytes.fromhex(root_signature_hex) if root_signature_hex else None
            ),
            builder=meta.get("itree_builder", "auto"),
            counters=Counters(),
            epoch=epoch,
        )
        recomputed = _ifmh_roots_digest(
            ads_arrays["arena_digests"],
            np.asarray(ads_arrays["leaf_root_index"], dtype=np.int64),
            tree.root_hash,
        )
        if recomputed != meta.get("roots_digest"):
            raise ConstructionError(
                f"ADS artifact {path_text!r}: stored root-of-roots digest does not "
                "match the digests recomputed from the loaded arrays; refusing to load"
            )
        ads = tree

    package = ServerPackage(dataset=dataset, ads=ads, public_parameters=parameters)
    return LoadedArtifact(package=package, config=config, meta=meta)


def load_public_parameters(path: Union[str, "os.PathLike[str]"]) -> PublicParameters:
    """Load only the public verification parameters from an artifact.

    Runs the same header and whole-payload integrity checks as
    :func:`load_artifact` but skips the (comparatively expensive) structure
    reconstruction -- this is all a verifying client needs.
    """
    path_text = _path_text(path)
    entries = _read_entries(path)
    meta = _parse_meta(entries, path_text)
    return PublicParameters.from_payload(meta["public_parameters"])


# Re-exported for discoverability next to the loaders.
def save_artifact_bytes(owner: DataOwner) -> bytes:
    """In-memory variant of :func:`save_artifact` (tests, network shipping)."""
    buffer = io.BytesIO()
    save_artifact(owner, buffer)
    return buffer.getvalue()
