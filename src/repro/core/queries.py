"""Analytic query types: top-k, score-range and KNN-on-score.

All three query types carry a weight vector ``X`` (the utility-function
input).  Inside the subdomain containing ``X`` the score functions are
totally ordered, so each query's result is a *contiguous window* of the
sorted function list (paper section 3.2); the window selection itself lives
in :mod:`repro.queryproc`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import InvalidQueryError

__all__ = ["AnalyticQuery", "TopKQuery", "RangeQuery", "KNNQuery"]


@dataclass(frozen=True)
class AnalyticQuery:
    """Base class: any query carrying a weight vector ``X``."""

    #: Stable machine-readable query-kind tag (``"topk"``/``"range"``/
    #: ``"knn"``); carried into structured error context and fault logs.
    kind = "analytic"

    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", tuple(float(w) for w in self.weights))
        if len(self.weights) == 0:
            raise InvalidQueryError("query weight vector must not be empty")

    @property
    def dimension(self) -> int:
        return len(self.weights)

    def validate(self, dimension: int) -> None:
        """Check that the query matches the template dimension."""
        if self.dimension != dimension:
            raise InvalidQueryError(
                f"query has {self.dimension} weights but the template has {dimension} variables"
            )

    def describe(self) -> str:
        """Human-readable one-line description (used in logs and examples)."""
        return f"{type(self).__name__}(X={self.weights})"


@dataclass(frozen=True)
class TopKQuery(AnalyticQuery):
    """``q = (X, k)``: the k records with the highest scores under ``X``."""

    kind = "topk"

    k: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.k < 1:
            raise InvalidQueryError(f"top-k requires k >= 1, got {self.k}")

    def describe(self) -> str:
        return f"TopKQuery(X={self.weights}, k={self.k})"


@dataclass(frozen=True)
class RangeQuery(AnalyticQuery):
    """``q = (X, l, u)``: the records whose score lies in ``[l, u]``."""

    kind = "range"

    low: float = 0.0
    high: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "low", float(self.low))
        object.__setattr__(self, "high", float(self.high))
        if self.low > self.high:
            raise InvalidQueryError(
                f"range query lower boundary {self.low} exceeds upper boundary {self.high}"
            )

    def describe(self) -> str:
        return f"RangeQuery(X={self.weights}, [{self.low}, {self.high}])"


@dataclass(frozen=True)
class KNNQuery(AnalyticQuery):
    """``q = (X, k, y)``: the k records whose scores are nearest to ``y``."""

    kind = "knn"

    k: int = 1
    target: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "target", float(self.target))
        if self.k < 1:
            raise InvalidQueryError(f"KNN requires k >= 1, got {self.k}")

    def describe(self) -> str:
        return f"KNNQuery(X={self.weights}, k={self.k}, y={self.target})"
