"""Core data model and the three-party outsourcing protocol."""

from repro.core.errors import (
    ConstructionError,
    ContextualReproError,
    InvalidQueryError,
    QueryProcessingError,
    ReproError,
    VerificationError,
)
from repro.core.config import SystemConfig, resolve_config
from repro.core.records import Dataset, Record, UtilityTemplate
from repro.core.queries import AnalyticQuery, KNNQuery, RangeQuery, TopKQuery
from repro.core.results import QueryResult, VerificationReport
from repro.core.owner import (
    DataOwner,
    PublicParameters,
    ServerPackage,
    UpdateReport,
    SCHEMES,
    SIGNATURE_MESH,
)
from repro.core.server import QueryExecution, Server
from repro.core.client import Client
from repro.core.protocol import OutsourcedSystem

__all__ = [
    "ReproError",
    "ContextualReproError",
    "InvalidQueryError",
    "ConstructionError",
    "QueryProcessingError",
    "VerificationError",
    "Dataset",
    "Record",
    "UtilityTemplate",
    "AnalyticQuery",
    "TopKQuery",
    "RangeQuery",
    "KNNQuery",
    "QueryResult",
    "VerificationReport",
    "DataOwner",
    "PublicParameters",
    "ServerPackage",
    "UpdateReport",
    "SCHEMES",
    "SIGNATURE_MESH",
    "SystemConfig",
    "resolve_config",
    "QueryExecution",
    "Server",
    "Client",
    "OutsourcedSystem",
]
