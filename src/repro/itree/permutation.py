"""Shared sorted-order storage for subdomain leaves.

Every subdomain of the arrangement sorts the *same* ``n`` score functions;
only the order differs, and adjacent subdomains differ by a single
transposition.  Materializing one Python list of function references per
leaf therefore costs Theta(n^2) list objects and Theta(n^2) pointers --
the dominant memory (and allocation-time) term of the I-tree at
thousand-record scale.

:class:`SharedFunctionOrder` replaces those lists with one 2-D integer
permutation array (one row per leaf, one column per sorted position) over a
single index-ordered function list, plus vectorized per-function
coefficient arrays that the IFMH scoring hot path indexes directly.
Leaves hold :class:`PermutedView` objects -- lazy, read-only sequences that
behave exactly like the old lists (iteration, indexing, ``len``) while
borrowing one row of the shared array.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.geometry.functions import LinearFunction

__all__ = ["SharedFunctionOrder", "PermutedView", "LazySplicedPermutation"]


class LazySplicedPermutation:
    """Row-lazy permutation produced by an incremental update.

    The updated forest's sorted rows are, for almost every subdomain, the
    previous epoch's row with one record spliced in at its rank (insert) or
    one column cut out (delete); only the few subdomains around touched
    breakpoints were re-sorted.  Materializing the dense ``(rows, n)``
    matrix eagerly would cost more than the whole changed-path rebuild, so
    this object stores the splice descriptors instead and computes rows on
    demand -- queries touch a handful of subdomains, and
    :func:`numpy.asarray` (``__array__``) densifies everything when an
    artifact is published.

    Parameters
    ----------
    base:
        The previous permutation -- a dense int32 matrix or another lazy
        permutation (chains are densified past a small depth by the
        updater).
    source_row:
        For every new row, the base row it derives from.
    mode / positions:
        ``"insert"``: ``splice_position`` is the inserted function's base
        position; ``row_rank[k]`` the sorted slot it takes in row ``k``.
        ``"delete"``: ``splice_position`` is the removed function's old
        base position; ``row_rank[k]`` the column cut out of row ``k``.
    overrides:
        ``{row: dense int32 row}`` for re-sorted subdomains (these ignore
        the splice descriptor entirely).
    """

    __slots__ = ("base", "source_row", "mode", "splice_position", "row_rank", "overrides", "shape", "depth")

    ndim = 2
    dtype = np.dtype(np.int32)

    def __init__(self, base, source_row, mode, splice_position, row_rank, overrides):
        if mode not in ("insert", "delete"):
            raise ValueError(f"unknown splice mode {mode!r}")
        self.base = base
        self.source_row = np.asarray(source_row, dtype=np.int64)
        self.mode = mode
        self.splice_position = int(splice_position)
        self.row_rank = np.asarray(row_rank, dtype=np.int64)
        self.overrides = overrides
        width = base.shape[1] + (1 if mode == "insert" else -1)
        self.shape = (self.source_row.shape[0], width)
        self.depth = getattr(base, "depth", 0) + 1

    def __len__(self) -> int:
        return self.shape[0]

    def __getitem__(self, row: int) -> np.ndarray:
        override = self.overrides.get(row)
        if override is not None:
            return override
        source = np.asarray(self.base[self.source_row[row]])
        position = self.splice_position
        out = np.empty(self.shape[1], dtype=np.int32)
        slot = int(self.row_rank[row])
        if self.mode == "insert":
            remapped = source + (source >= position)
            out[:slot] = remapped[:slot]
            out[slot] = position
            out[slot + 1 :] = remapped[slot:]
        else:
            remapped = source - (source > position)
            out[:slot] = remapped[:slot]
            out[slot:] = remapped[slot + 1 :]
        return out

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        dense = self.materialize()
        if dtype is not None and dense.dtype != dtype:
            return dense.astype(dtype)
        return dense

    def materialize(self) -> np.ndarray:
        """The dense int32 matrix (vectorized: run-grouped slice splices).

        Chains are flattened iteratively -- one full gather/splice pass per
        stacked layer, never more than two dense matrices alive.
        """
        chain: list[LazySplicedPermutation] = []
        node = self
        while isinstance(node, LazySplicedPermutation):
            chain.append(node)
            node = node.base
        dense = np.ascontiguousarray(node, dtype=np.int32)
        for layer in reversed(chain):
            dense = layer._apply(dense)
        return dense

    def _apply(self, base: np.ndarray) -> np.ndarray:
        """One layer's splice applied to its (dense) base matrix."""
        rows, width = self.shape
        position = self.splice_position
        gathered = base[self.source_row]
        out = np.empty((rows, width), dtype=np.int32)
        ranks = self.row_rank
        boundaries = np.nonzero(np.diff(ranks))[0] + 1
        starts = np.concatenate([[0], boundaries, [rows]])
        if self.mode == "insert":
            remapped = gathered + (gathered >= position)
            for run in range(starts.shape[0] - 1):
                a, b = int(starts[run]), int(starts[run + 1])
                if a == b:
                    continue
                slot = int(ranks[a])
                out[a:b, :slot] = remapped[a:b, :slot]
                out[a:b, slot] = position
                out[a:b, slot + 1 :] = remapped[a:b, slot:]
        else:
            remapped = gathered - (gathered > position)
            for run in range(starts.shape[0] - 1):
                a, b = int(starts[run]), int(starts[run + 1])
                if a == b:
                    continue
                slot = int(ranks[a])
                out[a:b, :slot] = remapped[a:b, :slot]
                out[a:b, slot:] = remapped[a:b, slot + 1 :]
        for row, override in self.overrides.items():
            out[row] = override
        return out


class PermutedView(Sequence):
    """Read-only view of ``base[row[i]]`` -- one leaf's sorted order.

    ``base`` is shared by every view (the index-ordered function or record
    list); ``row`` is one row of the shared permutation array (a numpy
    view, not a copy).  ``row_index`` records which row, so batch consumers
    can gather many leaves' rows from the shared array at once.
    """

    __slots__ = ("base", "row", "row_index")

    def __init__(self, base: Sequence, row: np.ndarray, row_index: int = -1):
        self.base = base
        self.row = row
        self.row_index = row_index

    def __len__(self) -> int:
        return len(self.row)

    def __getitem__(self, position):
        if isinstance(position, slice):
            base = self.base
            return [base[p] for p in self.row[position].tolist()]
        return self.base[self.row[position]]

    def __iter__(self):
        base = self.base
        return iter([base[p] for p in self.row.tolist()])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PermutedView(row_index={self.row_index}, length={len(self.row)})"


class SharedFunctionOrder:
    """One permutation array holding every leaf's sorted function order.

    Parameters
    ----------
    functions:
        The score functions in ascending ``function.index`` order (the
        canonical base order every permutation row refers to).
    permutation:
        ``(leaf_count, len(functions))`` integer array; row ``r`` lists the
        base positions of leaf ``r``'s functions in ascending score order.
    """

    __slots__ = ("functions", "permutation", "coefficient_matrix", "constant_vector")

    def __init__(self, functions: List[LinearFunction], permutation: np.ndarray):
        if permutation.ndim != 2 or permutation.shape[1] != len(functions):
            raise ValueError(
                f"permutation shape {permutation.shape} does not cover "
                f"{len(functions)} functions"
            )
        self.functions = functions
        self.permutation = permutation
        #: Per-function coefficient rows / constants in base order; a leaf's
        #: score matrix is one fancy-index away (``matrix[permutation[r]]``),
        #: bit-identical to rebuilding it from the function objects.
        self.coefficient_matrix = np.array([f.coefficients for f in functions], dtype=float)
        self.constant_vector = np.array([f.constant for f in functions], dtype=float)

    @property
    def leaf_count(self) -> int:
        return self.permutation.shape[0]

    @property
    def function_count(self) -> int:
        return self.permutation.shape[1]

    def view(self, row_index: int) -> PermutedView:
        """The lazy sorted-function sequence of leaf ``row_index``."""
        return PermutedView(self.functions, self.permutation[row_index], row_index)

    def permuted(self, base: Sequence, row_index: int) -> PermutedView:
        """A view of any base-ordered sequence under leaf ``row_index``'s order."""
        if len(base) != self.permutation.shape[1]:
            raise ValueError(
                f"base sequence has {len(base)} entries, expected {self.permutation.shape[1]}"
            )
        return PermutedView(base, self.permutation[row_index], row_index)
