"""Shared sorted-order storage for subdomain leaves.

Every subdomain of the arrangement sorts the *same* ``n`` score functions;
only the order differs, and adjacent subdomains differ by a single
transposition.  Materializing one Python list of function references per
leaf therefore costs Theta(n^2) list objects and Theta(n^2) pointers --
the dominant memory (and allocation-time) term of the I-tree at
thousand-record scale.

:class:`SharedFunctionOrder` replaces those lists with one 2-D integer
permutation array (one row per leaf, one column per sorted position) over a
single index-ordered function list, plus vectorized per-function
coefficient arrays that the IFMH scoring hot path indexes directly.
Leaves hold :class:`PermutedView` objects -- lazy, read-only sequences that
behave exactly like the old lists (iteration, indexing, ``len``) while
borrowing one row of the shared array.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.geometry.functions import LinearFunction

__all__ = ["SharedFunctionOrder", "PermutedView"]


class PermutedView(Sequence):
    """Read-only view of ``base[row[i]]`` -- one leaf's sorted order.

    ``base`` is shared by every view (the index-ordered function or record
    list); ``row`` is one row of the shared permutation array (a numpy
    view, not a copy).  ``row_index`` records which row, so batch consumers
    can gather many leaves' rows from the shared array at once.
    """

    __slots__ = ("base", "row", "row_index")

    def __init__(self, base: Sequence, row: np.ndarray, row_index: int = -1):
        self.base = base
        self.row = row
        self.row_index = row_index

    def __len__(self) -> int:
        return len(self.row)

    def __getitem__(self, position):
        if isinstance(position, slice):
            base = self.base
            return [base[p] for p in self.row[position].tolist()]
        return self.base[self.row[position]]

    def __iter__(self):
        base = self.base
        return iter([base[p] for p in self.row.tolist()])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PermutedView(row_index={self.row_index}, length={len(self.row)})"


class SharedFunctionOrder:
    """One permutation array holding every leaf's sorted function order.

    Parameters
    ----------
    functions:
        The score functions in ascending ``function.index`` order (the
        canonical base order every permutation row refers to).
    permutation:
        ``(leaf_count, len(functions))`` integer array; row ``r`` lists the
        base positions of leaf ``r``'s functions in ascending score order.
    """

    __slots__ = ("functions", "permutation", "coefficient_matrix", "constant_vector")

    def __init__(self, functions: List[LinearFunction], permutation: np.ndarray):
        if permutation.ndim != 2 or permutation.shape[1] != len(functions):
            raise ValueError(
                f"permutation shape {permutation.shape} does not cover "
                f"{len(functions)} functions"
            )
        self.functions = functions
        self.permutation = permutation
        #: Per-function coefficient rows / constants in base order; a leaf's
        #: score matrix is one fancy-index away (``matrix[permutation[r]]``),
        #: bit-identical to rebuilding it from the function objects.
        self.coefficient_matrix = np.array([f.coefficients for f in functions], dtype=float)
        self.constant_vector = np.array([f.constant for f in functions], dtype=float)

    @property
    def leaf_count(self) -> int:
        return self.permutation.shape[0]

    @property
    def function_count(self) -> int:
        return self.permutation.shape[1]

    def view(self, row_index: int) -> PermutedView:
        """The lazy sorted-function sequence of leaf ``row_index``."""
        return PermutedView(self.functions, self.permutation[row_index], row_index)

    def permuted(self, base: Sequence, row_index: int) -> PermutedView:
        """A view of any base-ordered sequence under leaf ``row_index``'s order."""
        if len(base) != self.permutation.shape[1]:
            raise ValueError(
                f"base sequence has {len(base)} entries, expected {self.permutation.shape[1]}"
            )
        return PermutedView(base, self.permutation[row_index], row_index)
