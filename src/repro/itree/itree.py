"""I-tree construction and search.

Two construction paths are available:

* The **incremental** path follows the paper's insertion algorithm (section
  3.1, step 1): for every pair of functions, the intersection ``I_{i,j}`` is
  inserted with a breadth-first walk from the root; subdomain nodes whose
  region it cuts are converted into intersection nodes, and intersection
  nodes whose region it cuts forward the insertion to both children.  It
  works for any dimension and is kept as the reference implementation (and
  for ablations).

* The **bulk** path (univariate configuration only) computes all pairwise
  breakpoints in one vectorized numpy pass, sorts them once, and assembles a
  *balanced* I-tree directly -- no per-hyperplane BFS and no repeated
  ``splits()`` engine calls.  The resulting partition is identical to the
  incremental path's; the tree *shape* is the balanced one, which equals
  what the incremental insertion would produce when fed the same hyperplanes
  in median-first order (the ``"balanced-incremental"`` builder, used by the
  property tests to check bit-identical structure and hashes).

After construction, every leaf's functions are sorted at an interior witness
point -- vectorized over all leaves at once on the bulk path.

Search descends one root-to-leaf path, choosing the *above* child when
``f_i(X) - f_j(X) >= 0`` and the *below* child otherwise, and records the
trace (the visited intersection nodes, the direction taken and the sibling
not taken) -- exactly the nodes the one-signature verification object needs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.errors import ConstructionError, QueryProcessingError
from repro.geometry.arrangement import pairwise_hyperplanes, univariate_breakpoints
from repro.geometry.domain import Domain, Region
from repro.geometry.engine import IntervalEngine, SplitEngine, make_engine
from repro.geometry.functions import COEFFICIENT_TOLERANCE, Hyperplane, LinearFunction
from repro.geometry.sorting import sort_functions_at
from repro.itree.nodes import ITreeNode
from repro.itree.permutation import SharedFunctionOrder
from repro.metrics.counters import Counters

__all__ = ["ITree", "SearchStep", "SearchTrace", "BUILDERS"]

#: Supported construction strategies (``"auto"`` resolves to one of the rest).
BUILDERS = ("incremental", "bulk", "balanced-incremental", "auto")

#: Leaves scored per vectorized chunk when finalizing a bulk-built tree
#: (bounds peak memory to ``chunk * n_functions`` floats).
_FINALIZE_CHUNK = 2048


@dataclass(frozen=True)
class SearchStep:
    """One internal node visited on a root-to-leaf search path."""

    node: ITreeNode
    took_above: bool

    @property
    def sibling(self) -> ITreeNode:
        """The child that was *not* taken."""
        return self.node.below if self.took_above else self.node.above

    @property
    def taken(self) -> ITreeNode:
        """The child that was taken."""
        return self.node.above if self.took_above else self.node.below


@dataclass
class SearchTrace:
    """Result of a subdomain search: the leaf plus the path that led to it."""

    leaf: ITreeNode
    steps: list[SearchStep] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.steps)

    def visited_nodes(self) -> int:
        """Nodes touched by the search (path nodes plus their siblings).

        This matches the paper's server-cost metric: the queue built during
        the search contains every node on the path and each node's sibling.
        """
        return 2 * len(self.steps) + 1


class ITree:
    """The intersection tree over a set of score functions."""

    def __init__(
        self,
        functions: Sequence[LinearFunction],
        domain: Domain,
        engine: Optional[SplitEngine] = None,
        counters: Optional[Counters] = None,
        builder: str = "auto",
    ):
        if not functions:
            raise ConstructionError("cannot build an I-tree over an empty function set")
        dimensions = {f.dimension for f in functions}
        if len(dimensions) != 1:
            raise ConstructionError(f"functions disagree on dimension: {sorted(dimensions)}")
        if dimensions.pop() != domain.dimension:
            raise ConstructionError("function dimension does not match the domain")
        if builder not in BUILDERS:
            raise ConstructionError(f"unknown builder {builder!r}; expected one of {BUILDERS}")
        self.functions = list(functions)
        self.domain = domain
        self.engine = engine or make_engine(domain)
        self.counters = counters or Counters()
        if builder == "auto":
            builder = "bulk" if self._bulk_supported() else "incremental"
        elif builder in ("bulk", "balanced-incremental") and not self._bulk_supported():
            raise ConstructionError(
                f"the {builder!r} builder requires a 1-D domain and an IntervalEngine"
            )
        self.builder = builder
        self.root = ITreeNode(region=Region.full(domain))
        self._insertion_checks = 0
        #: One shared 2-D permutation array covering every leaf's sorted
        #: order (set by leaf finalization; leaves hold lazy views into it).
        self.shared_order: Optional[SharedFunctionOrder] = None
        self._subdomain_count: Optional[int] = None
        self._node_count: Optional[int] = None
        if builder == "bulk":
            self._bulk_build()
        elif builder == "balanced-incremental":
            _, hyperplanes = self._bulk_plan()
            order = _median_first_order(len(hyperplanes))
            self._build([hyperplanes[k] for k in order])
        else:
            self._build(pairwise_hyperplanes(self.functions))

    @classmethod
    def bulk_build(
        cls,
        functions: Sequence[LinearFunction],
        domain: Domain,
        engine: Optional[SplitEngine] = None,
        counters: Optional[Counters] = None,
    ) -> "ITree":
        """Build a balanced I-tree with the vectorized fast path (d = 1)."""
        return cls(functions, domain, engine=engine, counters=counters, builder="bulk")

    def _bulk_supported(self) -> bool:
        return self.domain.dimension == 1 and isinstance(self.engine, IntervalEngine)

    # ----------------------------------------------- build (incremental BFS)
    def _build(self, hyperplanes: Iterable[Hyperplane]) -> None:
        for hyperplane in hyperplanes:
            self._insert(hyperplane)
        self._finalize_leaves()

    def _insert(self, hyperplane: Hyperplane) -> None:
        """Insert one intersection with the paper's BFS procedure."""
        queue: deque[ITreeNode] = deque([self.root])
        while queue:
            node = queue.popleft()
            self._insertion_checks += 1
            if not self.engine.splits(node.region, hyperplane):
                continue
            if node.is_subdomain:
                above_region, below_region = self.engine.split(node.region, hyperplane)
                node.convert_to_intersection(hyperplane, above_region, below_region)
            else:
                queue.append(node.above)
                queue.append(node.below)

    def _finalize_leaves(self) -> None:
        """Sort the functions of every leaf and assign stable subdomain ids.

        The per-leaf sorted lists are packed into one shared 2-D
        permutation array (see :class:`SharedFunctionOrder`); every leaf
        keeps a lazy view with the exact order ``sort_functions_at``
        produced, so downstream behaviour is unchanged.
        """
        leaves = []
        for node in self.root.iter_subtree():
            if node.is_subdomain:
                node.witness = self.engine.witness(node.region)
                leaves.append((node, sort_functions_at(self.functions, node.witness)))
        ordered_functions = sorted(self.functions, key=lambda f: f.index)
        position_of = {id(f): p for p, f in enumerate(ordered_functions)}
        permutation = np.empty((len(leaves), len(ordered_functions)), dtype=np.int32)
        for row, (_node, sorted_list) in enumerate(leaves):
            permutation[row] = [position_of[id(f)] for f in sorted_list]
        self.shared_order = SharedFunctionOrder(ordered_functions, permutation)
        for row, (node, _sorted_list) in enumerate(leaves):
            node.sorted_functions = self.shared_order.view(row)
        self._assign_subdomain_ids()

    def _assign_subdomain_ids(self) -> None:
        """Stable ids in pre-order traversal order (shared by both builders).

        Also caches the node and subdomain counts: the tree is immutable
        after construction, and the counts are read per benchmark run.
        """
        subdomain_id = 0
        node_count = 0
        for node in self.root.iter_subtree():
            node_count += 1
            if node.is_subdomain:
                node.subdomain_id = subdomain_id
                subdomain_id += 1
        self._subdomain_count = subdomain_id
        self._node_count = node_count

    # ------------------------------------------------- build (bulk, d = 1)
    def _bulk_plan(self) -> tuple[np.ndarray, list[Hyperplane]]:
        """Sorted, deduplicated breakpoints plus their hyperplanes.

        Replicates the incremental path's pruning exactly: hyperplanes whose
        slope difference is below the engine tolerance never split, nor do
        breakpoints outside the open domain interval or within tolerance of
        an already-kept breakpoint (those land on an existing boundary).
        """
        tolerance = self.engine.tolerance
        slope_tolerance = max(tolerance, COEFFICIENT_TOLERANCE)
        breakpoints, left, right, normals, offsets = univariate_breakpoints(
            self.functions, slope_tolerance
        )
        low, high = self.domain.lower[0], self.domain.upper[0]
        inside = (breakpoints > low + tolerance) & (breakpoints < high - tolerance)
        # Candidate columns stay in pairwise (insertion) order here.
        candidates = (
            breakpoints[inside],
            left[inside],
            right[inside],
            normals[inside],
            offsets[inside],
        )
        order = np.argsort(candidates[0], kind="stable")
        sorted_breakpoints = candidates[0][order]
        # All comparisons below use the exact float forms of
        # IntervalEngine.splits (``low + tol < bp < high - tol``) so the kept
        # set agrees with the incremental builder bit for bit.
        if len(sorted_breakpoints) == 0 or np.all(
            sorted_breakpoints[1:] > sorted_breakpoints[:-1] + tolerance
        ):
            # Fast path: no two candidates within tolerance, so every
            # insertion order keeps all of them.
            breakpoints, left, right, normals, offsets = (c[order] for c in candidates)
        else:
            # Tolerance chains: which near-duplicates survive depends on the
            # insertion order, so replay the incremental path's drop rule
            # (a breakpoint is dropped iff it lands within tolerance of its
            # containing leaf's boundaries, i.e. of its kept neighbours) in
            # the same pairwise order -- the kept *set* then matches the
            # incremental builder exactly.
            import bisect

            kept_values: list[float] = []
            kept_positions: list[int] = []
            for position, value in enumerate(candidates[0].tolist()):
                slot = bisect.bisect_left(kept_values, value)
                predecessor = kept_values[slot - 1] if slot else low
                successor = kept_values[slot] if slot < len(kept_values) else high
                if predecessor + tolerance < value < successor - tolerance:
                    kept_values.insert(slot, value)
                    kept_positions.insert(slot, position)
            breakpoints, left, right, normals, offsets = (c[kept_positions] for c in candidates)
        indices = [f.index for f in self.functions]
        hyperplanes = [
            Hyperplane(i=indices[p], j=indices[q], normal=(normal,), offset=offset)
            for p, q, normal, offset in zip(
                left.tolist(), right.tolist(), normals.tolist(), offsets.tolist()
            )
        ]
        return breakpoints, hyperplanes

    def _bulk_build(self) -> None:
        """Assemble a balanced tree directly from the sorted breakpoints.

        Produces exactly the tree that :meth:`_build` would produce when fed
        the kept hyperplanes in median-first order, without any BFS walks or
        redundant ``splits()`` probes.
        """
        _, hyperplanes = self._bulk_plan()
        count = len(hyperplanes)
        leaves: list[Optional[ITreeNode]] = [None] * (count + 1)
        stack: list[tuple[ITreeNode, int, int]] = [(self.root, 0, count)]
        while stack:
            node, low, high = stack.pop()
            if low >= high:
                leaves[low] = node
                continue
            mid = (low + high) // 2
            hyperplane = hyperplanes[mid]
            # check=False: the planner vetted every breakpoint at insertion
            # time; re-validating against the final (narrower) bounds here
            # could reject 1-ulp-of-tolerance gaps the incremental insertion
            # would have accepted.
            above_region, below_region = self.engine.split(node.region, hyperplane, check=False)
            above, below = node.convert_to_intersection(hyperplane, above_region, below_region)
            self._insertion_checks += 1
            # The child covering the smaller interval side holds the smaller
            # breakpoints: ``above`` is right of the breakpoint for positive
            # slopes and left of it for negative ones.
            if hyperplane.normal[0] > 0:
                left_child, right_child = below, above
            else:
                left_child, right_child = above, below
            stack.append((left_child, low, mid))
            stack.append((right_child, mid + 1, high))
        self._finalize_leaves_bulk([leaf for leaf in leaves if leaf is not None])

    def _finalize_leaves_bulk(self, leaves: Sequence[ITreeNode]) -> None:
        """Vectorized leaf finalization: score every leaf witness in one pass.

        Bit-compatible with :meth:`_finalize_leaves`: witnesses come from the
        engine, per-element score arithmetic matches
        :meth:`LinearFunction.evaluate` for d = 1, and the stable argsort over
        index-ordered functions reproduces ``sort_functions_at`` exactly.
        """
        by_index = sorted(range(len(self.functions)), key=lambda p: self.functions[p].index)
        ordered_functions = [self.functions[p] for p in by_index]
        slopes = np.array([f.coefficients[0] for f in ordered_functions], dtype=float)
        constants = np.array([f.constant for f in ordered_functions], dtype=float)
        for leaf in leaves:
            leaf.witness = self.engine.witness(leaf.region)
        witnesses = np.array([leaf.witness[0] for leaf in leaves], dtype=float)
        # The argsort rows ARE the shared permutation: stored once as a 2-D
        # integer array instead of Theta(leaves) Python lists of references.
        permutation = np.empty((len(leaves), len(ordered_functions)), dtype=np.int32)
        for start in range(0, len(leaves), _FINALIZE_CHUNK):
            chunk = slice(start, start + _FINALIZE_CHUNK)
            scores = witnesses[chunk, None] * slopes[None, :] + constants[None, :]
            permutation[chunk] = np.argsort(scores, axis=1, kind="stable")
        self.shared_order = SharedFunctionOrder(ordered_functions, permutation)
        for row, leaf in enumerate(leaves):
            leaf.sorted_functions = self.shared_order.view(row)
        self._assign_subdomain_ids()

    # ------------------------------------------------------------ accessors
    @property
    def insertion_checks(self) -> int:
        """Number of node-vs-intersection checks performed during the build."""
        return self._insertion_checks

    def leaves(self) -> Iterable[ITreeNode]:
        """All subdomain (leaf) nodes."""
        for node in self.root.iter_subtree():
            if node.is_subdomain:
                yield node

    def internal_nodes(self) -> Iterable[ITreeNode]:
        """All intersection (internal) nodes."""
        for node in self.root.iter_subtree():
            if node.is_intersection:
                yield node

    @property
    def subdomain_count(self) -> int:
        """Number of subdomain leaves (cached at construction time)."""
        if self._subdomain_count is None:
            self._subdomain_count = sum(1 for _ in self.leaves())
        return self._subdomain_count

    @property
    def node_count(self) -> int:
        """Total node count (cached at construction time)."""
        if self._node_count is None:
            self._node_count = sum(1 for _ in self.root.iter_subtree())
        return self._node_count

    def height(self) -> int:
        """Length of the longest root-to-leaf path (root alone = 0)."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            if node.is_subdomain:
                best = max(best, depth)
            else:
                stack.append((node.above, depth + 1))
                stack.append((node.below, depth + 1))
        return best

    # --------------------------------------------------------------- search
    def search(self, weights: Sequence[float], counters: Optional[Counters] = None) -> SearchTrace:
        """Find the subdomain containing ``weights`` and record the path."""
        if not self.domain.contains(weights):
            raise QueryProcessingError(
                f"weight vector {tuple(weights)} lies outside the published domain"
            )
        counters = counters if counters is not None else self.counters
        node = self.root
        steps: list[SearchStep] = []
        counters.add_node()  # the root is always inspected
        while node.is_intersection:
            took_above = node.hyperplane.side_value(weights) >= 0
            counters.add_comparison()
            steps.append(SearchStep(node=node, took_above=took_above))
            node = node.above if took_above else node.below
            # The search enqueues the taken child and its sibling (paper 3.2).
            counters.add_node(2)
        return SearchTrace(leaf=node, steps=steps)

    def locate(self, weights: Sequence[float]) -> ITreeNode:
        """Convenience wrapper returning only the subdomain leaf."""
        return self.search(weights).leaf


def _median_first_order(count: int) -> list[int]:
    """Indices ``0..count-1`` in the insertion order that yields a balanced BST.

    Each range contributes its median before either half, so every ancestor
    precedes its descendants -- inserting sorted breakpoints in this order
    through the incremental BFS reproduces the bulk-built balanced tree.
    """
    order: list[int] = []
    stack = [(0, count)]
    while stack:
        low, high = stack.pop()
        if low >= high:
            continue
        mid = (low + high) // 2
        order.append(mid)
        stack.append((mid + 1, high))
        stack.append((low, mid))
    return order
