"""I-tree construction and search.

Two construction paths are available:

* The **incremental** path follows the paper's insertion algorithm (section
  3.1, step 1): for every pair of functions, the intersection ``I_{i,j}`` is
  inserted with a breadth-first walk from the root; subdomain nodes whose
  region it cuts are converted into intersection nodes, and intersection
  nodes whose region it cuts forward the insertion to both children.  It
  works for any dimension and is kept as the reference implementation (and
  for ablations).

* The **bulk** path (univariate configuration only) computes all pairwise
  breakpoints in one vectorized numpy pass, sorts them once, and assembles a
  *balanced* I-tree directly -- no per-hyperplane BFS and no repeated
  ``splits()`` engine calls.  The resulting partition is identical to the
  incremental path's; the tree *shape* is the balanced one, which equals
  what the incremental insertion would produce when fed the same hyperplanes
  in median-first order (the ``"balanced-incremental"`` builder, used by the
  property tests to check bit-identical structure and hashes).

After construction, every leaf's functions are sorted at an interior witness
point -- vectorized over all leaves at once on the bulk path.

Search descends one root-to-leaf path, choosing the *above* child when
``f_i(X) - f_j(X) >= 0`` and the *below* child otherwise, and records the
trace (the visited intersection nodes, the direction taken and the sibling
not taken) -- exactly the nodes the one-signature verification object needs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.core.errors import ConstructionError, QueryProcessingError
from repro.geometry.arrangement import pairwise_hyperplanes, univariate_breakpoints
from repro.geometry.domain import ABOVE, BELOW, Constraint, Domain, Region
from repro.geometry.engine import IntervalEngine, SplitEngine, make_engine
from repro.geometry.functions import COEFFICIENT_TOLERANCE, Hyperplane, LinearFunction
from repro.geometry.sorting import sort_functions_at
from repro.itree.nodes import ITreeNode
from repro.itree.permutation import LazySplicedPermutation, SharedFunctionOrder
from repro.metrics.counters import Counters

__all__ = ["ITree", "SearchStep", "SearchTrace", "BulkPlanState", "BUILDERS"]

#: Supported construction strategies (``"auto"`` resolves to one of the rest).
BUILDERS = ("incremental", "bulk", "balanced-incremental", "auto")

#: Leaves scored per vectorized chunk when finalizing a bulk-built tree
#: (bounds peak memory to ``chunk * n_functions`` floats).
_FINALIZE_CHUNK = 2048


def _functions_by_index(functions: Sequence[LinearFunction]) -> list[LinearFunction]:
    """Functions in ascending ``index`` order, with duplicates rejected.

    The shared permutation stores positions into this ordering; two
    functions with the same ``index`` would make the global order ambiguous
    and silently corrupt every leaf's sorted view (the I-tree mirror of the
    duplicate-record-id check in :class:`repro.ifmh.ifmh_tree.IFMHTree`).
    """
    ordered = sorted(functions, key=lambda f: f.index)
    for previous, current in zip(ordered, ordered[1:]):
        if previous.index == current.index:
            raise ConstructionError(
                f"duplicate function index {current.index}; every function must "
                "carry a unique index for the shared sorted order to be "
                "well-defined"
            )
    return ordered


@dataclass(frozen=True)
class BulkPlanState:
    """The bulk builder's kept-breakpoint plan, in sorted array form.

    Stashed on bulk-built (and bulk-published, artifact-loaded) trees so the
    incremental-update path (:mod:`repro.ifmh.updates`) can splice new
    breakpoints into the plan instead of re-deriving it from the node
    objects.  Column ``k`` of every array describes the ``k``-th kept
    breakpoint in ascending order: its crossing value, the two function
    (record) ids of the pair, and the hyperplane's 1-D normal/offset --
    exactly the fields of the :class:`~repro.geometry.functions.Hyperplane`
    the tree's ``k``-th (by breakpoint order) intersection node carries.
    """

    breakpoints: np.ndarray
    hyper_i: np.ndarray
    hyper_j: np.ndarray
    hyper_normal: np.ndarray
    hyper_offset: np.ndarray

    @classmethod
    def from_hyperplanes(
        cls, breakpoints: np.ndarray, hyperplanes: Sequence[Hyperplane]
    ) -> "BulkPlanState":
        count = len(hyperplanes)
        return cls(
            breakpoints=np.ascontiguousarray(breakpoints, dtype=np.float64),
            hyper_i=np.fromiter((h.i for h in hyperplanes), dtype=np.int64, count=count),
            hyper_j=np.fromiter((h.j for h in hyperplanes), dtype=np.int64, count=count),
            hyper_normal=np.fromiter(
                (h.normal[0] for h in hyperplanes), dtype=np.float64, count=count
            ),
            hyper_offset=np.fromiter(
                (h.offset for h in hyperplanes), dtype=np.float64, count=count
            ),
        )


@dataclass(frozen=True)
class SearchStep:
    """One internal node visited on a root-to-leaf search path."""

    node: ITreeNode
    took_above: bool

    @property
    def sibling(self) -> ITreeNode:
        """The child that was *not* taken."""
        return self.node.below if self.took_above else self.node.above

    @property
    def taken(self) -> ITreeNode:
        """The child that was taken."""
        return self.node.above if self.took_above else self.node.below


@dataclass
class SearchTrace:
    """Result of a subdomain search: the leaf plus the path that led to it."""

    leaf: ITreeNode
    steps: list[SearchStep] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.steps)

    def visited_nodes(self) -> int:
        """Nodes touched by the search (path nodes plus their siblings).

        This matches the paper's server-cost metric: the queue built during
        the search contains every node on the path and each node's sibling.
        """
        return 2 * len(self.steps) + 1


class ITree:
    """The intersection tree over a set of score functions."""

    def __init__(
        self,
        functions: Sequence[LinearFunction],
        domain: Domain,
        engine: Optional[SplitEngine] = None,
        counters: Optional[Counters] = None,
        builder: str = "auto",
    ):
        if not functions:
            raise ConstructionError("cannot build an I-tree over an empty function set")
        dimensions = {f.dimension for f in functions}
        if len(dimensions) != 1:
            raise ConstructionError(f"functions disagree on dimension: {sorted(dimensions)}")
        if dimensions.pop() != domain.dimension:
            raise ConstructionError("function dimension does not match the domain")
        if builder not in BUILDERS:
            raise ConstructionError(f"unknown builder {builder!r}; expected one of {BUILDERS}")
        self.functions = list(functions)
        self.domain = domain
        self.engine = engine or make_engine(domain)
        self.counters = counters or Counters()
        if builder == "auto":
            builder = "bulk" if self._bulk_supported() else "incremental"
        elif builder in ("bulk", "balanced-incremental") and not self._bulk_supported():
            raise ConstructionError(
                f"the {builder!r} builder requires a 1-D domain and an IntervalEngine"
            )
        self.builder = builder
        self.root = ITreeNode(region=Region.full(domain))
        self._insertion_checks = 0
        #: One shared 2-D permutation array covering every leaf's sorted
        #: order (set by leaf finalization; leaves hold lazy views into it).
        self.shared_order: Optional[SharedFunctionOrder] = None
        #: Sorted kept-breakpoint plan (bulk builds only; derived lazily for
        #: bulk-published artifact loads).  ``None`` for incremental shapes.
        self.bulk_state: Optional[BulkPlanState] = None
        #: Change points of the shared permutation -- ``(rows, cols, vals)``
        #: of the cells where row ``t`` differs from row ``t - 1`` (bulk
        #: builds only).  The incremental-update path consumes these instead
        #: of re-diffing the dense matrix.
        self.perm_change = None
        #: Set only on artifact-loaded trees (see :meth:`from_arrays`).
        self._lazy_leaf_data = None
        self._subdomain_count: Optional[int] = None
        self._node_count: Optional[int] = None
        if builder == "bulk":
            self._bulk_build()
        elif builder == "balanced-incremental":
            _, hyperplanes = self._bulk_plan()
            order = _median_first_order(len(hyperplanes))
            self._build([hyperplanes[k] for k in order])
        else:
            self._build(pairwise_hyperplanes(self.functions))

    @classmethod
    def bulk_build(
        cls,
        functions: Sequence[LinearFunction],
        domain: Domain,
        engine: Optional[SplitEngine] = None,
        counters: Optional[Counters] = None,
    ) -> "ITree":
        """Build a balanced I-tree with the vectorized fast path (d = 1)."""
        return cls(functions, domain, engine=engine, counters=counters, builder="bulk")

    def _bulk_supported(self) -> bool:
        return self.domain.dimension == 1 and isinstance(self.engine, IntervalEngine)

    # ----------------------------------------------- build (incremental BFS)
    def _build(self, hyperplanes: Iterable[Hyperplane]) -> None:
        for hyperplane in hyperplanes:
            self._insert(hyperplane)
        self._finalize_leaves()

    def _insert(self, hyperplane: Hyperplane) -> None:
        """Insert one intersection with the paper's BFS procedure."""
        queue: deque[ITreeNode] = deque([self.root])
        while queue:
            node = queue.popleft()
            self._insertion_checks += 1
            if not self.engine.splits(node.region, hyperplane):
                continue
            if node.is_subdomain:
                above_region, below_region = self.engine.split(node.region, hyperplane)
                node.convert_to_intersection(hyperplane, above_region, below_region)
            else:
                queue.append(node.above)
                queue.append(node.below)

    def _finalize_leaves(self) -> None:
        """Sort the functions of every leaf and assign stable subdomain ids.

        The per-leaf sorted lists are packed into one shared 2-D
        permutation array (see :class:`SharedFunctionOrder`); every leaf
        keeps a lazy view with the exact order ``sort_functions_at``
        produced, so downstream behaviour is unchanged.
        """
        leaves = []
        for node in self.root.iter_subtree():
            if node.is_subdomain:
                node.witness = self.engine.witness(node.region)
                leaves.append((node, sort_functions_at(self.functions, node.witness)))
        ordered_functions = _functions_by_index(self.functions)
        count = len(ordered_functions)
        # One vectorized position lookup for every leaf at once: with indices
        # proven unique, searchsorted over the ascending index array maps each
        # function's index straight to its global position.
        sorted_indices = np.fromiter(
            (f.index for f in ordered_functions), dtype=np.int64, count=count
        )
        index_matrix = np.fromiter(
            (f.index for _node, sorted_list in leaves for f in sorted_list),
            dtype=np.int64,
            count=len(leaves) * count,
        ).reshape(len(leaves), count)
        permutation = np.searchsorted(sorted_indices, index_matrix).astype(np.int32)
        self.shared_order = SharedFunctionOrder(ordered_functions, permutation)
        for row, (node, _sorted_list) in enumerate(leaves):
            node.sorted_functions = self.shared_order.view(row)
        self._assign_subdomain_ids()

    def _assign_subdomain_ids(self) -> None:
        """Stable ids in pre-order traversal order (shared by both builders).

        Also caches the node and subdomain counts: the tree is immutable
        after construction, and the counts are read per benchmark run.
        """
        subdomain_id = 0
        node_count = 0
        for node in self.root.iter_subtree():
            node_count += 1
            if node.is_subdomain:
                node.subdomain_id = subdomain_id
                subdomain_id += 1
        self._subdomain_count = subdomain_id
        self._node_count = node_count

    # ------------------------------------------------- build (bulk, d = 1)
    def _bulk_plan(self) -> tuple[np.ndarray, list[Hyperplane]]:
        """Sorted, deduplicated breakpoints plus their hyperplanes.

        Replicates the incremental path's pruning exactly: hyperplanes whose
        slope difference is below the engine tolerance never split, nor do
        breakpoints outside the open domain interval or within tolerance of
        an already-kept breakpoint (those land on an existing boundary).
        """
        tolerance = self.engine.tolerance
        slope_tolerance = max(tolerance, COEFFICIENT_TOLERANCE)
        breakpoints, left, right, normals, offsets = univariate_breakpoints(
            self.functions, slope_tolerance
        )
        low, high = self.domain.lower[0], self.domain.upper[0]
        inside = (breakpoints > low + tolerance) & (breakpoints < high - tolerance)
        # Candidate columns stay in pairwise (insertion) order here.
        candidates = (
            breakpoints[inside],
            left[inside],
            right[inside],
            normals[inside],
            offsets[inside],
        )
        order = np.argsort(candidates[0], kind="stable")
        sorted_breakpoints = candidates[0][order]
        # All comparisons below use the exact float forms of
        # IntervalEngine.splits (``low + tol < bp < high - tol``) so the kept
        # set agrees with the incremental builder bit for bit.
        if len(sorted_breakpoints) == 0 or np.all(
            sorted_breakpoints[1:] > sorted_breakpoints[:-1] + tolerance
        ):
            # Fast path: no two candidates within tolerance, so every
            # insertion order keeps all of them.
            breakpoints, left, right, normals, offsets = (c[order] for c in candidates)
        else:
            # Tolerance chains: which near-duplicates survive depends on the
            # insertion order, so replay the incremental path's drop rule
            # (a breakpoint is dropped iff it lands within tolerance of its
            # containing leaf's boundaries, i.e. of its kept neighbours) in
            # the same pairwise order -- the kept *set* then matches the
            # incremental builder exactly.
            import bisect

            kept_values: list[float] = []
            kept_positions: list[int] = []
            for position, value in enumerate(candidates[0].tolist()):
                slot = bisect.bisect_left(kept_values, value)
                predecessor = kept_values[slot - 1] if slot else low
                successor = kept_values[slot] if slot < len(kept_values) else high
                if predecessor + tolerance < value < successor - tolerance:
                    kept_values.insert(slot, value)
                    kept_positions.insert(slot, position)
            breakpoints, left, right, normals, offsets = (c[kept_positions] for c in candidates)
        indices = [f.index for f in self.functions]
        hyperplanes = [
            Hyperplane(i=indices[p], j=indices[q], normal=(normal,), offset=offset)
            for p, q, normal, offset in zip(
                left.tolist(), right.tolist(), normals.tolist(), offsets.tolist()
            )
        ]
        return breakpoints, hyperplanes

    def _bulk_build(self) -> None:
        """Assemble a balanced tree directly from the sorted breakpoints.

        Produces exactly the tree that :meth:`_build` would produce when fed
        the kept hyperplanes in median-first order, without any BFS walks or
        redundant ``splits()`` probes.
        """
        breakpoints, hyperplanes = self._bulk_plan()
        self.bulk_state = BulkPlanState.from_hyperplanes(breakpoints, hyperplanes)
        count = len(hyperplanes)
        leaves: list[Optional[ITreeNode]] = [None] * (count + 1)
        stack: list[tuple[ITreeNode, int, int]] = [(self.root, 0, count)]
        while stack:
            node, low, high = stack.pop()
            if low >= high:
                leaves[low] = node
                continue
            mid = (low + high) // 2
            hyperplane = hyperplanes[mid]
            # check=False: the planner vetted every breakpoint at insertion
            # time; re-validating against the final (narrower) bounds here
            # could reject 1-ulp-of-tolerance gaps the incremental insertion
            # would have accepted.
            above_region, below_region = self.engine.split(node.region, hyperplane, check=False)
            above, below = node.convert_to_intersection(hyperplane, above_region, below_region)
            self._insertion_checks += 1
            # The child covering the smaller interval side holds the smaller
            # breakpoints: ``above`` is right of the breakpoint for positive
            # slopes and left of it for negative ones.
            left_child, right_child = (
                (below, above) if hyperplane.normal[0] > 0 else (above, below)
            )
            stack.append((left_child, low, mid))
            stack.append((right_child, mid + 1, high))
        self._finalize_leaves_bulk([leaf for leaf in leaves if leaf is not None])

    def _finalize_leaves_bulk(self, leaves: Sequence[ITreeNode]) -> None:
        """Vectorized leaf finalization: score every leaf witness in one pass.

        Bit-compatible with :meth:`_finalize_leaves`: witnesses come from the
        engine, per-element score arithmetic matches
        :meth:`LinearFunction.evaluate` for d = 1, and the stable argsort over
        index-ordered functions reproduces ``sort_functions_at`` exactly.
        """
        ordered_functions = _functions_by_index(self.functions)
        slopes = np.array([f.coefficients[0] for f in ordered_functions], dtype=float)
        constants = np.array([f.constant for f in ordered_functions], dtype=float)
        for leaf in leaves:
            leaf.witness = self.engine.witness(leaf.region)
        witnesses = np.array([leaf.witness[0] for leaf in leaves], dtype=float)
        # The argsort rows ARE the shared permutation: stored once as a 2-D
        # integer array instead of Theta(leaves) Python lists of references.
        permutation = np.empty((len(leaves), len(ordered_functions)), dtype=np.int32)
        for start in range(0, len(leaves), _FINALIZE_CHUNK):
            chunk = slice(start, start + _FINALIZE_CHUNK)
            scores = witnesses[chunk, None] * slopes[None, :] + constants[None, :]
            permutation[chunk] = np.argsort(scores, axis=1, kind="stable")
        self.shared_order = SharedFunctionOrder(ordered_functions, permutation)
        self.perm_change = _permutation_change_points(permutation)
        for row, leaf in enumerate(leaves):
            leaf.sorted_functions = self.shared_order.view(row)
        self._assign_subdomain_ids()

    # --------------------------------------------------------------- codecs
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Serialize the tree's structure into flat arrays (artifact export).

        The tree is written in pre-order (the :meth:`ITreeNode.iter_subtree`
        order: node, above-subtree, below-subtree).  ``node_is_leaf`` has
        one entry per node; hyperplane columns have one entry per
        intersection node (in pre-order-internal order) and the leaf
        columns one entry per subdomain (in pre-order-leaf order, which is
        subdomain-id order).  Regions are *not* stored: they are fully
        determined by the descent and rebuilt bit-identically by
        :meth:`from_arrays`.
        """
        if self.shared_order is None:
            raise ConstructionError("cannot serialize an unfinalized I-tree")
        if self._lazy_leaf_data is not None:
            # Re-publishing a loaded tree: every leaf must be materialized
            # so its witness and sorted view can be read back out.
            for leaf in self.loaded_leaf_nodes:
                self.materialize_leaf(leaf)
        dimension = self.domain.dimension
        flags: list[int] = []
        hyper_i: list[int] = []
        hyper_j: list[int] = []
        hyper_normal: list[tuple[float, ...]] = []
        hyper_offset: list[float] = []
        leaf_witness: list[tuple[float, ...]] = []
        leaf_row: list[int] = []
        for node in self.root.iter_subtree():
            if node.is_subdomain:
                flags.append(1)
                leaf_witness.append(node.witness)
                leaf_row.append(node.sorted_functions.row_index)
            else:
                flags.append(0)
                hyper_i.append(node.hyperplane.i)
                hyper_j.append(node.hyperplane.j)
                hyper_normal.append(node.hyperplane.normal)
                hyper_offset.append(node.hyperplane.offset)
        arrays = {
            "node_is_leaf": np.asarray(flags, dtype=np.uint8),
            "hyper_i": np.asarray(hyper_i, dtype=np.int64),
            "hyper_j": np.asarray(hyper_j, dtype=np.int64),
            "hyper_normal": np.asarray(hyper_normal, dtype=np.float64).reshape(
                len(hyper_offset), dimension
            ),
            "hyper_offset": np.asarray(hyper_offset, dtype=np.float64),
            "leaf_witness": np.asarray(leaf_witness, dtype=np.float64).reshape(
                len(leaf_row), dimension
            ),
            "leaf_row": np.asarray(leaf_row, dtype=np.int64),
        }
        arrays.update(
            _encode_permutation(self.shared_order.permutation, self.perm_change)
        )
        return arrays

    @classmethod
    def from_arrays(
        cls,
        functions: Sequence[LinearFunction],
        domain: Domain,
        arrays: Dict[str, np.ndarray],
        *,
        engine: Optional[SplitEngine] = None,
        counters: Optional[Counters] = None,
        builder: str = "auto",
    ) -> "ITree":
        """Rebuild a finalized tree from :meth:`to_arrays` output.

        No geometry engine runs and nothing is hashed.  The node skeleton
        (structure + hyperplanes -- everything a search touches) is built
        eagerly; per-leaf state (region, witness, sorted-function view) is
        *lazy*: :meth:`materialize_leaf` derives it on first use with the
        same arithmetic the construction-time splits used (the interval
        rule of :class:`~repro.geometry.engine.IntervalEngine` for d = 1,
        plain constraint accumulation for the LP configuration), so every
        materialized region's constraint set -- and therefore every
        multi-signature subdomain digest -- is bit-identical to the
        original build's.  Queries touch a handful of subdomains, so a
        cold-started server never pays for the other hundred thousand;
        intermediate node regions stay ``None`` (nothing reads them after
        construction).  Loaded nodes are exposed in pre-order via
        :attr:`loaded_internal_nodes` / :attr:`loaded_leaf_nodes` so the
        IFMH layer can attach stored hashes without another traversal.
        """
        self = cls.__new__(cls)
        self.functions = list(functions)
        self.domain = domain
        self.engine = engine or make_engine(domain)
        self.counters = counters or Counters()
        self.builder = builder
        self._insertion_checks = 0
        ordered_functions = _functions_by_index(self.functions)
        permutation = _decode_permutation(arrays)
        self.shared_order = SharedFunctionOrder(ordered_functions, permutation)
        self.bulk_state = None
        self.perm_change = None
        if builder == "bulk" and domain.dimension == 1:
            if "perm_delta_col" in arrays:
                # The artifact's row-delta permutation encoding *is* the
                # change-point list the update path wants.
                counts = np.asarray(arrays["perm_delta_counts"], dtype=np.int64)
                self.perm_change = (
                    np.repeat(np.arange(1, counts.shape[0] + 1, dtype=np.int64), counts),
                    np.asarray(arrays["perm_delta_col"], dtype=np.int64),
                    np.asarray(arrays["perm_delta_val"], dtype=np.int64),
                )
            elif isinstance(permutation, np.ndarray):
                self.perm_change = _permutation_change_points(permutation)
            # Re-derive the sorted kept-breakpoint plan from the stored
            # hyperplane columns (same floats, same -offset/slope arithmetic
            # as IntervalEngine._breakpoint), so loaded bulk trees stay
            # eligible for incremental updates.
            normals = np.asarray(arrays["hyper_normal"], dtype=np.float64).reshape(-1)
            offsets = np.asarray(arrays["hyper_offset"], dtype=np.float64)
            breakpoints = -offsets / normals
            order = np.argsort(breakpoints, kind="stable")
            self.bulk_state = BulkPlanState(
                breakpoints=breakpoints[order],
                hyper_i=np.asarray(arrays["hyper_i"], dtype=np.int64)[order],
                hyper_j=np.asarray(arrays["hyper_j"], dtype=np.int64)[order],
                hyper_normal=normals[order],
                hyper_offset=offsets[order],
            )

        flags = np.asarray(arrays["node_is_leaf"], dtype=np.uint8).tolist()
        hyper_i = np.asarray(arrays["hyper_i"], dtype=np.int64).tolist()
        hyper_j = np.asarray(arrays["hyper_j"], dtype=np.int64).tolist()
        hyper_normal = np.asarray(arrays["hyper_normal"], dtype=np.float64).tolist()
        hyper_offset = np.asarray(arrays["hyper_offset"], dtype=np.float64).tolist()
        leaf_witness = np.asarray(arrays["leaf_witness"], dtype=np.float64).tolist()
        leaf_row = np.asarray(arrays["leaf_row"], dtype=np.int64).tolist()
        internal_count = len(hyper_offset)
        leaf_count = len(leaf_row)
        if len(flags) != internal_count + leaf_count:
            raise ConstructionError(
                f"I-tree arrays disagree: {len(flags)} nodes vs "
                f"{internal_count} internal + {leaf_count} leaves"
            )
        if leaf_count != permutation.shape[0]:
            raise ConstructionError(
                f"I-tree arrays disagree: {leaf_count} leaves vs "
                f"{permutation.shape[0]} permutation rows"
            )

        # Hot loop: one node object per array entry, nothing else.  The
        # fast constructors skip (frozen) dataclass __init__ machinery; the
        # values come straight from the validated arrays.
        new_hyperplane = Hyperplane.__new__
        set_frozen = object.__setattr__
        root = ITreeNode(region=Region.full(domain))
        internal_nodes: list[ITreeNode] = []
        leaf_nodes: list[ITreeNode] = []
        stack = [root]
        pop = stack.pop
        push = stack.append
        internal_cursor = 0
        leaf_cursor = 0
        for is_leaf in flags:
            if not stack:
                raise ConstructionError("I-tree node flags describe a malformed tree")
            node = pop()
            if is_leaf:
                node.subdomain_id = leaf_cursor
                leaf_nodes.append(node)
                leaf_cursor += 1
                continue
            hyperplane = new_hyperplane(Hyperplane)
            set_frozen(hyperplane, "i", hyper_i[internal_cursor])
            set_frozen(hyperplane, "j", hyper_j[internal_cursor])
            set_frozen(hyperplane, "normal", tuple(hyper_normal[internal_cursor]))
            set_frozen(hyperplane, "offset", hyper_offset[internal_cursor])
            internal_cursor += 1
            node.hyperplane = hyperplane
            internal_nodes.append(node)
            node.above = above = ITreeNode(region=None, parent=node)
            node.below = below = ITreeNode(region=None, parent=node)
            # Pre-order: the above subtree is consumed before the below one.
            push(below)
            push(above)
        if stack or internal_cursor != internal_count or leaf_cursor != leaf_count:
            raise ConstructionError("I-tree arrays describe a malformed tree")
        self.root = root
        self.loaded_internal_nodes = internal_nodes
        self.loaded_leaf_nodes = leaf_nodes
        self._lazy_leaf_data = (leaf_witness, leaf_row)
        self._subdomain_count = leaf_count
        self._node_count = len(flags)
        return self

    def materialize_leaf(self, leaf: ITreeNode) -> None:
        """Fill a lazily loaded subdomain's region, witness and sorted view.

        No-op for eagerly built trees and already-materialized leaves.  The
        region is replayed down the leaf's root path with exactly the
        arithmetic of the original construction, so its constraint tuple
        (and interval bounds for d = 1) is bit-identical to the eager
        build's.
        """
        data = getattr(self, "_lazy_leaf_data", None)
        if data is None or leaf.witness is not None:
            return
        witnesses, rows = data
        path: list[ITreeNode] = []
        node = leaf
        while node.parent is not None:
            path.append(node)
            node = node.parent
        path.reverse()
        domain = self.domain
        univariate = domain.dimension == 1
        if univariate:
            low, high = domain.lower[0], domain.upper[0]
        else:
            low = high = float("nan")
        constraints: tuple = ()
        set_frozen = object.__setattr__
        new_constraint = Constraint.__new__
        parent = self.root
        for child in path:
            hyperplane = parent.hyperplane
            took_above = parent.above is child
            if univariate:
                # Replicates IntervalEngine.split exactly (same float ops).
                slope = hyperplane.normal[0]
                breakpoint = -hyperplane.offset / slope
                if slope > 0:
                    if took_above:
                        low = breakpoint
                    else:
                        high = breakpoint
                elif took_above:
                    high = breakpoint
                else:
                    low = breakpoint
            constraint = new_constraint(Constraint)
            set_frozen(constraint, "hyperplane", hyperplane)
            set_frozen(constraint, "side", ABOVE if took_above else BELOW)
            constraints = constraints + (constraint,)
            parent = child
        region = Region.__new__(Region)
        set_frozen(region, "domain", domain)
        set_frozen(region, "constraints", constraints)
        set_frozen(region, "interval_low", low)
        set_frozen(region, "interval_high", high)
        subdomain_id = leaf.subdomain_id
        leaf.region = region
        leaf.sorted_functions = self.shared_order.view(rows[subdomain_id])
        # The witness doubles as the done-marker, so it is assigned last:
        # a concurrent materialization that observes it non-None must be
        # able to read every other leaf field (execute_batch is threaded).
        leaf.witness = tuple(witnesses[subdomain_id])

    # ------------------------------------------------------------ accessors
    @property
    def insertion_checks(self) -> int:
        """Number of node-vs-intersection checks performed during the build."""
        return self._insertion_checks

    def leaves(self) -> Iterable[ITreeNode]:
        """All subdomain (leaf) nodes."""
        for node in self.root.iter_subtree():
            if node.is_subdomain:
                yield node

    def internal_nodes(self) -> Iterable[ITreeNode]:
        """All intersection (internal) nodes."""
        for node in self.root.iter_subtree():
            if node.is_intersection:
                yield node

    @property
    def subdomain_count(self) -> int:
        """Number of subdomain leaves (cached at construction time)."""
        if self._subdomain_count is None:
            self._subdomain_count = sum(1 for _ in self.leaves())
        return self._subdomain_count

    @property
    def node_count(self) -> int:
        """Total node count (cached at construction time)."""
        if self._node_count is None:
            self._node_count = sum(1 for _ in self.root.iter_subtree())
        return self._node_count

    def height(self) -> int:
        """Length of the longest root-to-leaf path (root alone = 0)."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            if node.is_subdomain:
                best = max(best, depth)
            else:
                stack.append((node.above, depth + 1))
                stack.append((node.below, depth + 1))
        return best

    # --------------------------------------------------------------- search
    def search(self, weights: Sequence[float], counters: Optional[Counters] = None) -> SearchTrace:
        """Find the subdomain containing ``weights`` and record the path."""
        if not self.domain.contains(weights):
            raise QueryProcessingError(
                f"weight vector {tuple(weights)} lies outside the published domain"
            )
        counters = counters if counters is not None else self.counters
        node = self.root
        steps: list[SearchStep] = []
        counters.add_node()  # the root is always inspected
        while node.is_intersection:
            took_above = node.hyperplane.side_value(weights) >= 0
            counters.add_comparison()
            steps.append(SearchStep(node=node, took_above=took_above))
            node = node.above if took_above else node.below
            # The search enqueues the taken child and its sibling (paper 3.2).
            counters.add_node(2)
        return SearchTrace(leaf=node, steps=steps)

    def locate(self, weights: Sequence[float]) -> ITreeNode:
        """Convenience wrapper returning only the subdomain leaf."""
        return self.search(weights).leaf


#: Rows diffed per chunk when extracting permutation change points (bounds
#: the transient boolean matrix to a few MB however large the build is).
_CHANGE_POINT_CHUNK = 8192


def _permutation_change_points(
    permutation: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(rows, cols, vals)`` of the cells where row ``t`` differs from
    ``t - 1`` -- the representation the incremental-update path consumes
    (and, shifted, what the artifact's row-delta encoding stores).

    Computed eagerly at build time (a ~1% scan of a bulk build) so the
    first incremental update never pays a dense diff; the chunking keeps
    the transient comparison matrix small at any scale.
    """
    total = permutation.shape[0]
    empty = np.empty(0, dtype=np.int64)
    if total <= 1:
        return empty, empty, empty
    rows_out: list = []
    cols_out: list = []
    vals_out: list = []
    for start in range(1, total, _CHANGE_POINT_CHUNK):
        stop = min(start + _CHANGE_POINT_CHUNK, total)
        block = permutation[start:stop]
        changed = block != permutation[start - 1 : stop - 1]
        change_rows, change_cols = np.nonzero(changed)
        rows_out.append(change_rows + start)
        cols_out.append(change_cols.astype(np.int64))
        vals_out.append(block[changed].astype(np.int64))
    return (
        np.concatenate(rows_out),
        np.concatenate(cols_out),
        np.concatenate(vals_out),
    )


def _encode_permutation(
    permutation: np.ndarray, change_points=None
) -> dict[str, np.ndarray]:
    """Row-delta encoding of the shared permutation array (artifact export).

    Adjacent subdomains of the 1-D arrangement differ by a single adjacent
    transposition, so consecutive permutation rows are almost identical and
    the dense ``(leaves, n)`` matrix -- by far the largest part of a
    thousand-record artifact -- compresses to the first row plus the
    per-row changed cells.  Rows are compared in storage order whatever the
    builder produced; when the delta form would not actually be smaller
    (tiny trees, adversarial orders) the dense matrix is stored as
    ``permutation`` instead, and the decoder accepts either.  A caller that
    already holds the change points (bulk builds cache them for the update
    path) passes them in; otherwise they are derived here.
    """
    dense = np.ascontiguousarray(permutation, dtype=np.int32)
    rows = dense.shape[0]
    if rows > 1:
        if change_points is None:
            change_points = _permutation_change_points(dense)
        change_rows, change_cols, change_vals = change_points
        delta_cells = change_cols.shape[0]
        if 2 * delta_cells + rows + dense.shape[1] < dense.size // 2:
            return {
                "perm_row0": dense[0].copy(),
                "perm_delta_counts": np.bincount(
                    change_rows - 1, minlength=rows - 1
                ).astype(np.int64),
                "perm_delta_col": change_cols.astype(np.int32),
                "perm_delta_val": change_vals.astype(np.int32),
            }
    return {"permutation": dense}


def _decode_permutation(arrays: dict) -> np.ndarray:
    """Rebuild the dense permutation matrix from either stored encoding."""
    if "permutation" in arrays:
        permutation = arrays["permutation"]
        if isinstance(permutation, LazySplicedPermutation):
            # Incremental updates hand their row-lazy permutation through
            # the same reconstruction path; it densifies only on publish.
            return permutation
        return np.ascontiguousarray(permutation, dtype=np.int32)
    row0 = np.ascontiguousarray(arrays["perm_row0"], dtype=np.int32)
    counts = np.asarray(arrays["perm_delta_counts"], dtype=np.int64)
    columns = np.ascontiguousarray(arrays["perm_delta_col"], dtype=np.int64)
    values = np.ascontiguousarray(arrays["perm_delta_val"], dtype=np.int32)
    rows = counts.shape[0] + 1
    permutation = np.empty((rows, row0.shape[0]), dtype=np.int32)
    permutation[0] = row0
    bounds = np.empty(rows, dtype=np.int64)
    bounds[0] = 0
    np.cumsum(counts, out=bounds[1:])
    starts = bounds.tolist()
    for row in range(1, rows):
        previous = permutation[row - 1]
        current = permutation[row]
        current[:] = previous
        start, stop = starts[row - 1], starts[row]
        if start != stop:
            current[columns[start:stop]] = values[start:stop]
    return permutation


def _median_first_order(count: int) -> list[int]:
    """Indices ``0..count-1`` in the insertion order that yields a balanced BST.

    Each range contributes its median before either half, so every ancestor
    precedes its descendants -- inserting sorted breakpoints in this order
    through the incremental BFS reproduces the bulk-built balanced tree.
    """
    order: list[int] = []
    stack = [(0, count)]
    while stack:
        low, high = stack.pop()
        if low >= high:
            continue
        mid = (low + high) // 2
        order.append(mid)
        stack.append((mid + 1, high))
        stack.append((low, mid))
    return order
