"""I-tree construction and search.

Construction follows the paper's insertion algorithm (section 3.1, step 1):
for every pair of functions, the intersection ``I_{i,j}`` is inserted with a
breadth-first walk from the root; subdomain nodes whose region it cuts are
converted into intersection nodes, and intersection nodes whose region it
cuts forward the insertion to both children.  After all pairs are inserted,
every leaf's functions are sorted at an interior witness point.

Search descends one root-to-leaf path, choosing the *above* child when
``f_i(X) - f_j(X) >= 0`` and the *below* child otherwise, and records the
trace (the visited intersection nodes, the direction taken and the sibling
not taken) -- exactly the nodes the one-signature verification object needs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.errors import ConstructionError, QueryProcessingError
from repro.geometry.arrangement import pairwise_hyperplanes
from repro.geometry.domain import Domain, Region
from repro.geometry.engine import SplitEngine, make_engine
from repro.geometry.functions import Hyperplane, LinearFunction
from repro.geometry.sorting import sort_functions_at
from repro.itree.nodes import ITreeNode
from repro.metrics.counters import Counters

__all__ = ["ITree", "SearchStep", "SearchTrace"]


@dataclass(frozen=True)
class SearchStep:
    """One internal node visited on a root-to-leaf search path."""

    node: ITreeNode
    took_above: bool

    @property
    def sibling(self) -> ITreeNode:
        """The child that was *not* taken."""
        return self.node.below if self.took_above else self.node.above

    @property
    def taken(self) -> ITreeNode:
        """The child that was taken."""
        return self.node.above if self.took_above else self.node.below


@dataclass
class SearchTrace:
    """Result of a subdomain search: the leaf plus the path that led to it."""

    leaf: ITreeNode
    steps: list[SearchStep] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.steps)

    def visited_nodes(self) -> int:
        """Nodes touched by the search (path nodes plus their siblings).

        This matches the paper's server-cost metric: the queue built during
        the search contains every node on the path and each node's sibling.
        """
        return 2 * len(self.steps) + 1


class ITree:
    """The intersection tree over a set of score functions."""

    def __init__(
        self,
        functions: Sequence[LinearFunction],
        domain: Domain,
        engine: Optional[SplitEngine] = None,
        counters: Optional[Counters] = None,
    ):
        if not functions:
            raise ConstructionError("cannot build an I-tree over an empty function set")
        dimensions = {f.dimension for f in functions}
        if len(dimensions) != 1:
            raise ConstructionError(f"functions disagree on dimension: {sorted(dimensions)}")
        if dimensions.pop() != domain.dimension:
            raise ConstructionError("function dimension does not match the domain")
        self.functions = list(functions)
        self.domain = domain
        self.engine = engine or make_engine(domain)
        self.counters = counters or Counters()
        self.root = ITreeNode(region=Region.full(domain))
        self._insertion_checks = 0
        self._build()

    # ---------------------------------------------------------------- build
    def _build(self) -> None:
        for hyperplane in pairwise_hyperplanes(self.functions):
            self._insert(hyperplane)
        self._finalize_leaves()

    def _insert(self, hyperplane: Hyperplane) -> None:
        """Insert one intersection with the paper's BFS procedure."""
        queue: deque[ITreeNode] = deque([self.root])
        while queue:
            node = queue.popleft()
            self._insertion_checks += 1
            if not self.engine.splits(node.region, hyperplane):
                continue
            if node.is_subdomain:
                above_region, below_region = self.engine.split(node.region, hyperplane)
                node.convert_to_intersection(hyperplane, above_region, below_region)
            else:
                queue.append(node.above)
                queue.append(node.below)

    def _finalize_leaves(self) -> None:
        """Sort the functions of every leaf and assign stable subdomain ids."""
        subdomain_id = 0
        for node in self.root.iter_subtree():
            if node.is_subdomain:
                node.witness = self.engine.witness(node.region)
                node.sorted_functions = sort_functions_at(self.functions, node.witness)
                node.subdomain_id = subdomain_id
                subdomain_id += 1

    # ------------------------------------------------------------ accessors
    @property
    def insertion_checks(self) -> int:
        """Number of node-vs-intersection checks performed during the build."""
        return self._insertion_checks

    def leaves(self) -> Iterable[ITreeNode]:
        """All subdomain (leaf) nodes."""
        for node in self.root.iter_subtree():
            if node.is_subdomain:
                yield node

    def internal_nodes(self) -> Iterable[ITreeNode]:
        """All intersection (internal) nodes."""
        for node in self.root.iter_subtree():
            if node.is_intersection:
                yield node

    @property
    def subdomain_count(self) -> int:
        return sum(1 for _ in self.leaves())

    @property
    def node_count(self) -> int:
        return sum(1 for _ in self.root.iter_subtree())

    def height(self) -> int:
        """Length of the longest root-to-leaf path (root alone = 0)."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            if node.is_subdomain:
                best = max(best, depth)
            else:
                stack.append((node.above, depth + 1))
                stack.append((node.below, depth + 1))
        return best

    # --------------------------------------------------------------- search
    def search(self, weights: Sequence[float], counters: Optional[Counters] = None) -> SearchTrace:
        """Find the subdomain containing ``weights`` and record the path."""
        if not self.domain.contains(weights):
            raise QueryProcessingError(
                f"weight vector {tuple(weights)} lies outside the published domain"
            )
        counters = counters if counters is not None else self.counters
        node = self.root
        steps: list[SearchStep] = []
        counters.add_node()  # the root is always inspected
        while node.is_intersection:
            took_above = node.hyperplane.side_value(weights) >= 0
            counters.add_comparison()
            steps.append(SearchStep(node=node, took_above=took_above))
            node = node.above if took_above else node.below
            # The search enqueues the taken child and its sibling (paper 3.2).
            counters.add_node(2)
        return SearchTrace(leaf=node, steps=steps)

    def locate(self, weights: Sequence[float]) -> ITreeNode:
        """Convenience wrapper returning only the subdomain leaf."""
        return self.search(weights).leaf
