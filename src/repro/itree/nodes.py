"""I-tree nodes.

A node starts life as a *subdomain node* (a leaf describing one region of
the weight space).  When an intersection hyperplane is found to cut its
region, the node is converted in place into an *intersection node* with two
fresh subdomain children -- this mirrors the paper's insertion algorithm,
which rewrites the dequeued node rather than re-linking its parent.

Every node also carries a ``hash_value`` attribute (initially ``None``, the
paper's "invalid" marker) that the IMH-tree construction fills in bottom-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from repro.geometry.domain import Region
from repro.geometry.functions import Hyperplane, LinearFunction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.merkle.fmh_tree import FMHTree

__all__ = ["ITreeNode"]


@dataclass
class ITreeNode:
    """A node of the I-tree (subdomain leaf or intersection internal node)."""

    region: Region
    hyperplane: Optional[Hyperplane] = None
    above: Optional["ITreeNode"] = None
    below: Optional["ITreeNode"] = None
    parent: Optional["ITreeNode"] = field(default=None, repr=False)
    #: Filled for subdomain nodes once the functions have been sorted.
    witness: Optional[tuple[float, ...]] = None
    #: The leaf's functions in ascending score order.  After finalization
    #: this is a lazy :class:`repro.itree.permutation.PermutedView` over the
    #: tree's shared permutation array (list semantics for reads); the
    #: plain-list default only exists pre-finalization.
    sorted_functions: Sequence[LinearFunction] = field(default_factory=list)
    #: Merkle hash, ``None`` until the IMH propagation computes it
    #: (the paper's "0 / invalid" default).
    hash_value: Optional[bytes] = None
    #: FMH-tree attached to subdomain nodes by the IFMH construction (step 2).
    #: Neighbouring subdomains' trees share leaf digests and hash-consed
    #: internal nodes when built through the shared-structure engine, but
    #: each leaf still owns an independent ``FMHTree`` view of its list.
    fmh_tree: Optional["FMHTree"] = None
    #: Lazily cached ``(coefficient_matrix, constant_vector)`` numpy pair over
    #: the sorted functions, filled by :meth:`repro.ifmh.IFMHTree.leaf_scores`
    #: so server-side scoring is a single matvec.
    score_cache: object = None
    #: Per-subdomain signature in multi-signature mode.
    signature: Optional[bytes] = None
    #: Stable identifier assigned to subdomain leaves after construction.
    subdomain_id: Optional[int] = None

    # ------------------------------------------------------------ queries
    @property
    def is_subdomain(self) -> bool:
        """True for leaves (subdomain nodes)."""
        return self.hyperplane is None

    @property
    def is_intersection(self) -> bool:
        """True for internal nodes (intersection nodes)."""
        return self.hyperplane is not None

    @property
    def children(self) -> tuple[Optional["ITreeNode"], Optional["ITreeNode"]]:
        return self.above, self.below

    # ----------------------------------------------------------- mutation
    def convert_to_intersection(
        self,
        hyperplane: Hyperplane,
        above_region: Region,
        below_region: Region,
    ) -> tuple["ITreeNode", "ITreeNode"]:
        """Turn this subdomain leaf into an intersection node with two leaves.

        Returns the two new children ``(above, below)``.
        """
        if self.is_intersection:
            raise ValueError("only subdomain nodes can be converted")
        self.hyperplane = hyperplane
        self.above = ITreeNode(region=above_region, parent=self)
        self.below = ITreeNode(region=below_region, parent=self)
        # A converted node no longer represents a single subdomain.
        self.witness = None
        self.sorted_functions = []
        return self.above, self.below

    # ---------------------------------------------------------- traversal
    def iter_subtree(self) -> Iterator["ITreeNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if node.is_intersection:
                stack.append(node.below)
                stack.append(node.above)

    def depth(self) -> int:
        """Distance to the root (root has depth 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    def branch_for(self, weights: Sequence[float]) -> "ITreeNode":
        """The child on whose side the weight vector lies (intersection nodes)."""
        if self.is_subdomain:
            raise ValueError("subdomain nodes have no branches")
        if self.hyperplane.side_value(weights) >= 0:
            return self.above
        return self.below
