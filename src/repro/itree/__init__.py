"""Intersection tree (I-tree).

The I-tree (Yang & Cai, TKDE 2018; recapped in section 2.3.2 of the
reproduced paper) indexes the subdomains created by the pairwise
intersections of the score functions: internal nodes record an intersection
``I_{i,j}`` and point to the *above* (``f_i - f_j >= 0``) and *below*
(``< 0``) sub-trees; leaves are subdomain nodes carrying the sorted function
list for their region.  Searching for the subdomain containing a weight
vector follows one root-to-leaf path.
"""

from repro.itree.nodes import ITreeNode
from repro.itree.itree import BUILDERS, ITree, SearchStep, SearchTrace
from repro.itree.permutation import PermutedView, SharedFunctionOrder

__all__ = [
    "BUILDERS",
    "ITreeNode",
    "ITree",
    "SearchStep",
    "SearchTrace",
    "PermutedView",
    "SharedFunctionOrder",
]
